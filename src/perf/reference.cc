#include "perf/reference.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>

namespace melody::perf::reference {

std::vector<const auction::WorkerProfile*> build_ranking_queue(
    std::span<const auction::WorkerProfile> workers,
    const auction::AuctionConfig& config) {
  std::vector<const auction::WorkerProfile*> queue;
  queue.reserve(workers.size());
  for (const auto& w : workers) {
    if (w.bid.cost > 0.0 && w.bid.frequency > 0 && w.estimated_quality > 0.0 &&
        config.qualifies(w)) {
      queue.push_back(&w);
    }
  }
  std::sort(queue.begin(), queue.end(),
            [](const auction::WorkerProfile* a,
               const auction::WorkerProfile* b) {
              const double ra = a->estimated_quality / a->bid.cost;
              const double rb = b->estimated_quality / b->bid.cost;
              if (ra != rb) return ra > rb;
              return a->id < b->id;
            });
  return queue;
}

std::vector<PreAllocation> pre_allocate(
    const std::vector<const auction::WorkerProfile*>& queue,
    std::span<const auction::Task> tasks, auction::PaymentRule rule) {
  auto ratio_of = [&](std::size_t pos) {
    return queue[pos]->bid.cost / queue[pos]->estimated_quality;
  };

  std::vector<std::size_t> task_order(tasks.size());
  std::iota(task_order.begin(), task_order.end(), std::size_t{0});
  std::sort(task_order.begin(), task_order.end(),
            [&](std::size_t a, std::size_t b) {
              if (tasks[a].quality_threshold != tasks[b].quality_threshold) {
                return tasks[a].quality_threshold < tasks[b].quality_threshold;
              }
              return tasks[a].id < tasks[b].id;
            });

  std::vector<int> available(queue.size());
  for (std::size_t i = 0; i < queue.size(); ++i) {
    available[i] = queue[i]->bid.frequency;
  }

  std::vector<PreAllocation> pre;
  pre.reserve(tasks.size());
  for (std::size_t task_index : task_order) {
    const double required = tasks[task_index].quality_threshold;

    PreAllocation p;
    p.task_index = task_index;
    double covered = 0.0;
    std::size_t k = 0;
    while (k < queue.size() && covered < required) {
      if (available[k] > 0) {
        covered += queue[k]->estimated_quality;
        p.winners.push_back(k);
      }
      ++k;
    }
    if (covered < required) continue;

    bool priceable = true;
    p.payments.reserve(p.winners.size());
    if (rule == auction::PaymentRule::kPaperNextInQueue) {
      if (k >= queue.size()) continue;
      const double ratio = ratio_of(k);
      for (std::size_t widx : p.winners) {
        p.payments.push_back(ratio * queue[widx]->estimated_quality);
      }
    } else {
      p.payments.assign(p.winners.size(), 0.0);
      for (std::size_t w = 0; w < p.winners.size(); ++w) {
        const std::size_t widx = p.winners[w];
        double cumulative = 0.0;
        std::size_t pos = 0;
        while (pos < queue.size()) {
          if (pos != widx && available[pos] > 0) {
            cumulative += queue[pos]->estimated_quality;
            if (cumulative >= required) break;
          }
          ++pos;
        }
        if (pos >= queue.size()) {
          priceable = false;
          break;
        }
        p.payments[w] = ratio_of(pos) * queue[widx]->estimated_quality;
      }
    }
    if (!priceable) continue;

    for (std::size_t w = 0; w < p.winners.size(); ++w) {
      p.total_payment += p.payments[w];
      --available[p.winners[w]];
    }
    pre.push_back(std::move(p));
  }

  std::sort(pre.begin(), pre.end(),
            [&](const PreAllocation& a, const PreAllocation& b) {
              if (a.total_payment != b.total_payment) {
                return a.total_payment < b.total_payment;
              }
              return tasks[a.task_index].id < tasks[b.task_index].id;
            });
  return pre;
}

auction::AllocationResult run_greedy(
    std::span<const auction::WorkerProfile> workers,
    std::span<const auction::Task> tasks,
    const auction::AuctionConfig& config, auction::PaymentRule rule) {
  const auto queue = build_ranking_queue(workers, config);
  const auto pre = pre_allocate(queue, tasks, rule);

  auction::AllocationResult result;
  double remaining = config.budget;
  for (const auto& p : pre) {
    if (p.total_payment > remaining) break;
    remaining -= p.total_payment;
    result.selected_tasks.push_back(tasks[p.task_index].id);
    for (std::size_t w = 0; w < p.winners.size(); ++w) {
      result.assignments.push_back({queue[p.winners[w]]->id,
                                    tasks[p.task_index].id, p.payments[w]});
    }
  }
  return result;
}

void AosKalmanChain::register_worker(auction::WorkerId id) {
  State state;
  state.posterior = config_.initial_posterior;
  state.params = config_.initial_params;
  state.window_anchor = config_.initial_posterior;
  states_.try_emplace(id, std::move(state));
}

void AosKalmanChain::observe(auction::WorkerId id,
                             const lds::ScoreSet& scores) {
  State& state = states_.at(id);
  ++state.runs_seen;
  if (scores.empty() && !config_.advance_on_empty_runs) return;
  state.history.push_back(scores);
  if (!scores.empty()) ++state.observed_runs;
  if (config_.max_history > 0 &&
      static_cast<int>(state.history.size()) > config_.max_history) {
    state.window_anchor = lds::filter_step(state.window_anchor,
                                           state.history.front(), state.params);
    state.history.erase(state.history.begin());
  }

  state.posterior = lds::filter_step(state.posterior, scores, state.params);

  ++state.runs_since_em;
  if (config_.reestimation_period > 0 &&
      state.runs_since_em >= config_.reestimation_period &&
      state.observed_runs >= config_.min_history_for_em) {
    const lds::EmResult em = lds::fit_lds(state.window_anchor, state.history,
                                          state.params, config_.em_options);
    state.params = em.params;
    state.runs_since_em = 0;
    ++state.em_count;
    if (config_.refilter_after_em) {
      state.posterior =
          lds::filter(state.window_anchor, state.history, state.params)
              .posteriors.back();
    }
  }
  state.posterior.mean = std::clamp(state.posterior.mean,
                                    config_.estimate_min, config_.estimate_max);
}

double AosKalmanChain::estimate(auction::WorkerId id) const {
  const State& state = states_.at(id);
  double estimate = state.params.a * state.posterior.mean;
  if (config_.exploration_beta > 0.0) {
    estimate += config_.exploration_beta *
                std::sqrt(std::log(state.runs_seen + 1.0) /
                          (state.observed_runs + 1.0));
  }
  return std::clamp(estimate, config_.estimate_min, config_.estimate_max);
}

void AosKalmanChain::save(std::ostream& out) const {
  std::vector<auction::WorkerId> ids;
  ids.reserve(states_.size());
  for (const auto& [id, state] : states_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  out << "MELODY_TRACKER v2" << '\n' << ids.size() << '\n';
  out.precision(17);
  for (auction::WorkerId id : ids) {
    const State& s = states_.at(id);
    out << id << ' ' << s.posterior.mean << ' ' << s.posterior.var << ' '
        << s.window_anchor.mean << ' ' << s.window_anchor.var << ' '
        << s.params.a << ' ' << s.params.gamma << ' ' << s.params.eta << ' '
        << s.runs_since_em << ' ' << s.runs_seen << ' ' << s.observed_runs
        << ' ' << s.em_count << ' ' << s.history.size() << '\n';
    for (const lds::ScoreSet& set : s.history) {
      out << set.count << ' ' << set.sum << ' ' << set.sum_squares << '\n';
    }
  }
}

}  // namespace melody::perf::reference
