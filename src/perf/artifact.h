// The pinned perf-trajectory artifact: schema-versioned BENCH_*.json
// committed at the repository root, one per PR, so "faster" is a
// falsifiable claim with a diffable history (tools/perf_compare gates CI
// against the previous point).
//
// Schema v1 (all times in milliseconds):
//   {
//     "schema_version": 1,
//     "date": "YYYY-MM-DD",
//     "git_sha": "<short sha or 'unknown'>",
//     "quick": false,            // true for the CI --quick run
//     "threads": 8,              // shared-pool concurrency during the run
//     "repeats": 5,              // requested median-of-K
//     "benchmarks": [
//       {
//         "name": "kalman_chain",
//         "repeats": 5,
//         "wall_ms": [..],       // per-repeat, sorted ascending
//         "cpu_ms": [..],        // process CPU per repeat, wall order
//         "median_wall_ms": ..,  // median of wall_ms
//         "median_cpu_ms": ..,
//         "peak_rss_kb": ..,     // getrusage ru_maxrss after the bench
//         "config": {..},        // run parameters (sizes, seeds, flags)
//         "counters": {..},      // derived scalars, e.g. speedup_vs_scalar
//         "phases": [            // obs timer quantiles from one
//           {                    // instrumented extra pass (not timed)
//             "name": "auction/rank_sort",
//             "count": .., "sum_ms": ..,
//             "p50_ms": .., "p90_ms": .., "p99_ms": ..
//           }, ..
//         ]
//       }, ..
//     ]
//   }
//
// Validation rules (enforced by validate(), unit-tested in
// tests/test_perf_artifact.cc): required keys present and typed, repeats ==
// len(wall_ms) == len(cpu_ms) > 0, wall_ms sorted ascending with
// median_wall_ms the true median, all times finite and non-negative,
// benchmark names unique and non-empty.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "perf/json.h"

namespace melody::perf {

inline constexpr int kArtifactSchemaVersion = 1;

struct PhaseStats {
  std::string name;
  std::int64_t count = 0;
  double sum_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
};

struct BenchmarkResult {
  std::string name;
  int repeats = 0;
  std::vector<double> wall_ms;  // sorted ascending
  std::vector<double> cpu_ms;   // same permutation as wall_ms
  double median_wall_ms = 0.0;
  double median_cpu_ms = 0.0;
  std::int64_t peak_rss_kb = 0;
  std::vector<std::pair<std::string, double>> config;    // ordered
  std::vector<std::pair<std::string, double>> counters;  // ordered
  std::vector<PhaseStats> phases;

  /// Convenience: counter value by name, or fallback when absent.
  double counter_or(const std::string& key, double fallback) const;
};

struct PerfArtifact {
  int schema_version = kArtifactSchemaVersion;
  std::string date;     // YYYY-MM-DD
  std::string git_sha;  // short sha, or "unknown" outside a git checkout
  bool quick = false;
  int threads = 1;
  int repeats = 0;
  std::vector<BenchmarkResult> benchmarks;

  const BenchmarkResult* find(const std::string& name) const;
};

/// Median of an unsorted sample (even sizes average the middle pair);
/// throws std::invalid_argument on an empty sample.
double median(std::vector<double> values);

JsonValue to_json(const PerfArtifact& artifact);

/// Parse + validate. Throws std::runtime_error with a path-qualified
/// message on malformed JSON or any schema violation.
PerfArtifact artifact_from_json(const JsonValue& json);
PerfArtifact parse_artifact(const std::string& text);

/// Schema checks beyond shape (see header comment). Throws
/// std::runtime_error naming the violated rule.
void validate(const PerfArtifact& artifact);

/// File I/O; read_artifact throws std::runtime_error on missing or
/// malformed files, write_artifact on I/O failure.
PerfArtifact read_artifact(const std::string& path);
void write_artifact(const PerfArtifact& artifact, const std::string& path);

/// The canonical committed file name: BENCH_<date>_<gitsha>.json.
std::string artifact_file_name(const PerfArtifact& artifact);

}  // namespace melody::perf
