#include "util/flags.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace melody::util {

namespace {

std::string render_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty() || body.front() == '-') {
      throw std::invalid_argument("Flags: malformed flag " + arg);
    }
    const auto equals = body.find('=');
    std::string name;
    std::string value;
    if (equals != std::string::npos) {
      name = body.substr(0, equals);
      value = body.substr(equals + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      // "--key value" when the next token is not itself a flag; otherwise a
      // bare switch.
      name = body;
      value = argv[++i];
    } else {
      name = body;
      value = "true";
    }
    if (!values_.emplace(name, std::move(value)).second) {
      throw std::invalid_argument("Flags: duplicate flag --" + name);
    }
  }
}

bool Flags::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("Flags: --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("Flags: --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1" || it->second == "yes") {
    return true;
  }
  if (it->second == "false" || it->second == "0" || it->second == "no") {
    return false;
  }
  throw std::invalid_argument("Flags: --" + name + " expects a boolean, got '" +
                              it->second + "'");
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback,
                              const std::string& hint,
                              const std::string& description) const {
  document(name, hint, description,
           fallback.empty() ? "" : "\"" + fallback + "\"");
  return get_string(name, fallback);
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback,
                            const std::string& hint,
                            const std::string& description) const {
  document(name, hint, description, std::to_string(fallback));
  return get_int(name, fallback);
}

double Flags::get_double(const std::string& name, double fallback,
                         const std::string& hint,
                         const std::string& description) const {
  document(name, hint, description, render_double(fallback));
  return get_double(name, fallback);
}

bool Flags::get_bool(const std::string& name, bool fallback,
                     const std::string& hint,
                     const std::string& description) const {
  document(name, hint, description, fallback ? "true" : "false");
  return get_bool(name, fallback);
}

bool Flags::has_switch(const std::string& name,
                       const std::string& description) const {
  document(name, "", description, "");
  return has(name);
}

void Flags::document(const std::string& name, const std::string& hint,
                     const std::string& description,
                     const std::string& rendered_default) const {
  const bool known =
      std::any_of(docs_.begin(), docs_.end(),
                  [&name](const Doc& d) { return d.name == name; });
  if (!known) docs_.push_back(Doc{name, hint, description, rendered_default});
}

std::string Flags::help(const std::string& program,
                        const std::string& summary) const {
  std::vector<Doc> docs = docs_;
  docs.push_back(Doc{"help", "", "show this message and exit", ""});

  std::string text = "usage: " + program + " [flags]\n";
  if (!summary.empty()) text += "  " + summary + "\n";
  text += "\nflags:\n";
  std::size_t width = 0;
  const auto label = [](const Doc& d) {
    return "--" + d.name + (d.hint.empty() ? "" : " " + d.hint);
  };
  for (const Doc& d : docs) width = std::max(width, label(d).size());
  for (const Doc& d : docs) {
    std::string line = "  " + label(d);
    line.append(width + 4 - (line.size() - 2), ' ');
    line += d.description;
    if (!d.rendered_default.empty()) {
      line += " (default " + d.rendered_default + ")";
    }
    text += line + "\n";
  }
  return text;
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, value] : values_) {
    if (!queried_.count(name)) names.push_back(name);
  }
  return names;
}

}  // namespace melody::util
