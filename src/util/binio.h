// Little-endian binary (de)serialization primitives for the checkpoint
// formats (sim::Platform snapshots and anything else that needs a compact,
// versioned on-disk representation).
//
// Every writer is explicit about width and byte order, so snapshots are
// portable across platforms; every reader validates stream state and throws
// std::runtime_error with the caller-supplied context on truncation, so a
// corrupt checkpoint fails loudly instead of resuming from garbage.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace melody::util::binio {

inline void write_u8(std::ostream& out, std::uint8_t value) {
  out.put(static_cast<char>(value));
}

inline void write_u32(std::ostream& out, std::uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  out.write(bytes, sizeof bytes);
}

inline void write_u64(std::ostream& out, std::uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  out.write(bytes, sizeof bytes);
}

inline void write_i32(std::ostream& out, std::int32_t value) {
  write_u32(out, static_cast<std::uint32_t>(value));
}

inline void write_f64(std::ostream& out, double value) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  write_u64(out, std::bit_cast<std::uint64_t>(value));
}

/// Length-prefixed byte string (u64 length + raw bytes).
inline void write_bytes(std::ostream& out, const std::string& bytes) {
  write_u64(out, bytes.size());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

inline std::uint8_t read_u8(std::istream& in, const char* what) {
  const int c = in.get();
  if (c == std::char_traits<char>::eof()) {
    throw std::runtime_error(std::string(what) + ": truncated input");
  }
  return static_cast<std::uint8_t>(c);
}

inline std::uint32_t read_u32(std::istream& in, const char* what) {
  char bytes[4];
  if (!in.read(bytes, sizeof bytes)) {
    throw std::runtime_error(std::string(what) + ": truncated input");
  }
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

inline std::uint64_t read_u64(std::istream& in, const char* what) {
  char bytes[8];
  if (!in.read(bytes, sizeof bytes)) {
    throw std::runtime_error(std::string(what) + ": truncated input");
  }
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

inline std::int32_t read_i32(std::istream& in, const char* what) {
  return static_cast<std::int32_t>(read_u32(in, what));
}

inline double read_f64(std::istream& in, const char* what) {
  return std::bit_cast<double>(read_u64(in, what));
}

/// Reads a length-prefixed byte string written by write_bytes. `max_size`
/// guards against a corrupted length field allocating unbounded memory.
inline std::string read_bytes(std::istream& in, const char* what,
                              std::uint64_t max_size = (1ull << 32)) {
  const std::uint64_t size = read_u64(in, what);
  if (size > max_size) {
    throw std::runtime_error(std::string(what) + ": implausible length");
  }
  std::string bytes(static_cast<std::size_t>(size), '\0');
  if (size > 0 && !in.read(bytes.data(), static_cast<std::streamsize>(size))) {
    throw std::runtime_error(std::string(what) + ": truncated input");
  }
  return bytes;
}

}  // namespace melody::util::binio
