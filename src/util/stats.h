// Small statistics toolkit used by the metrics layer, the trajectory
// classifier (Fig. 1 stability definition), and the benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace melody::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
/// Numerically stable for long runs; O(1) per observation.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (divide by n). Zero for fewer than two samples.
  double variance() const noexcept;
  /// Sample variance (divide by n-1). Zero for fewer than two samples.
  double sample_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Result of an ordinary least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination; zero when variance of y is zero.
  double r_squared = 0.0;
};

/// Least-squares fit over (x, y) pairs. Requires xs.size() == ys.size();
/// returns a flat fit for fewer than two points.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Least-squares fit of ys against x = 0, 1, 2, ... (time series trend).
LinearFit linear_trend(std::span<const double> ys);

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double median(std::vector<double> xs);        // by-value: sorts a copy

/// q-th quantile (0 <= q <= 1) with linear interpolation; sorts a copy.
double quantile(std::vector<double> xs, double q);

/// Mean absolute difference between two equal-length series.
double mean_absolute_error(std::span<const double> a, std::span<const double> b);

/// Root-mean-square difference between two equal-length series.
double rmse(std::span<const double> a, std::span<const double> b);

/// Pearson correlation coefficient; zero if either series is constant.
double pearson(std::span<const double> a, std::span<const double> b);

}  // namespace melody::util
