// Console table printer used by the bench harness to emit the same rows
// the paper's tables/figures report, aligned for human reading.
#pragma once

#include <string>
#include <vector>

namespace melody::util {

/// Accumulates rows of string cells and renders them with per-column
/// alignment, a header separator, and an optional title banner.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows: the first cell is a label, the rest are
  /// formatted with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  /// Render the table; if title is nonempty it is printed as a banner.
  std::string render(const std::string& title = {}) const;

  /// Render and write to stdout.
  void print(const std::string& title = {}) const;

  static std::string format(double value, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace melody::util
