// Deterministic fork-join loops on top of util::ThreadPool.
//
// parallel_for(pool, n, fn) runs fn(i) for every i in [0, n). Indices are
// claimed in contiguous chunks through one atomic counter — no work
// stealing — and callers must write results by index only, so the output
// is bit-identical to the serial loop for any thread count (including
// pool == nullptr, which *is* the serial loop).
//
// The calling thread participates in the loop. That makes nesting safe: a
// parallel_for issued from inside a pool task always makes progress even
// when every pool thread is busy, because the caller drains the remaining
// chunks itself. Helper tasks that wake up after the loop finished find no
// chunks left and exit without touching the loop body.
//
// The first exception thrown by the body aborts the remaining chunks and
// is rethrown on the calling thread after every claimed chunk retired.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace melody::util {

namespace internal {

/// Fork-join bookkeeping shared between the caller and the helper tasks.
/// Helpers hold it via shared_ptr, so a helper that wakes up after the
/// caller already returned touches only this block, never the loop body.
struct ParallelForState {
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<bool> abort{false};
  std::size_t total_chunks = 0;
  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t retired_chunks = 0;  // guarded by mutex
  std::exception_ptr error;        // guarded by mutex; first one wins
};

}  // namespace internal

template <typename Body>
void parallel_for(ThreadPool* pool, std::size_t n, Body&& body,
                  std::size_t min_grain = 1) {
  if (n == 0) return;
  const std::size_t helpers = pool == nullptr ? 0 : pool->size();
  if (helpers == 0 || n <= std::max<std::size_t>(min_grain, 1)) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Fork-join region wall time (the caller-observed cost of going
  // parallel); nullptr — and therefore free — unless obs is enabled.
  obs::ScopedTimer region_timer(
      obs::timer_if_enabled("pool/parallel_region"));

  // Static chunking: ~4 chunks per participant smooths imbalance without
  // per-index claiming overhead; min_grain keeps tiny bodies batched.
  const std::size_t participants = helpers + 1;
  const std::size_t chunk =
      std::max({min_grain, std::size_t{1}, n / (4 * participants)});
  auto state = std::make_shared<internal::ParallelForState>();
  state->total_chunks = (n + chunk - 1) / chunk;

  // Every claimed chunk is retired exactly once, even after an abort (the
  // body is skipped but the chunk still counts), so the caller's wait for
  // retired == total guarantees no thread is inside the body when this
  // frame — and the body captured by reference — goes away.
  auto run_chunks = [state, chunk, n, &body] {
    std::size_t retired = 0;
    for (;;) {
      const std::size_t c =
          state->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= state->total_chunks) break;
      if (!state->abort.load(std::memory_order_relaxed)) {
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(n, lo + chunk);
        try {
          for (std::size_t i = lo; i < hi; ++i) body(i);
        } catch (...) {
          state->abort.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(state->mutex);
          if (!state->error) state->error = std::current_exception();
        }
      }
      ++retired;
    }
    if (retired > 0) {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->retired_chunks += retired;
      if (state->retired_chunks >= state->total_chunks) {
        state->all_done.notify_all();
      }
    }
  };

  const std::size_t helper_tasks = std::min(helpers, state->total_chunks - 1);
  for (std::size_t h = 0; h < helper_tasks; ++h) pool->post(run_chunks);
  run_chunks();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&state] {
    return state->retired_chunks >= state->total_chunks;
  });
  if (state->error) std::rethrow_exception(state->error);
}

/// Deterministic parallel sort: the range is cut into one block per
/// participant, blocks are sorted concurrently, then folded together with
/// std::inplace_merge. `comp` must be a strict weak ordering that is total
/// on the input (break ties explicitly) — the result is then the unique
/// sorted order regardless of thread count.
template <typename RandomIt, typename Compare>
void parallel_sort(ThreadPool* pool, RandomIt first, RandomIt last,
                   Compare comp, std::size_t min_parallel = 4096) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  const std::size_t helpers = pool == nullptr ? 0 : pool->size();
  if (helpers == 0 || n < std::max<std::size_t>(min_parallel, 2)) {
    std::sort(first, last, comp);
    return;
  }
  const std::size_t blocks = std::min(helpers + 1, n);
  std::vector<std::size_t> runs(blocks + 1);
  for (std::size_t b = 0; b <= blocks; ++b) runs[b] = b * n / blocks;

  parallel_for(pool, blocks, [&](std::size_t b) {
    std::sort(first + static_cast<std::ptrdiff_t>(runs[b]),
              first + static_cast<std::ptrdiff_t>(runs[b + 1]), comp);
  });

  // Bottom-up pairwise merges; the merges of one pass touch disjoint
  // ranges and run concurrently. Each pass halves the number of runs.
  while (runs.size() > 2) {
    const std::size_t pairs = (runs.size() - 1) / 2;
    parallel_for(pool, pairs, [&](std::size_t p) {
      std::inplace_merge(first + static_cast<std::ptrdiff_t>(runs[2 * p]),
                         first + static_cast<std::ptrdiff_t>(runs[2 * p + 1]),
                         first + static_cast<std::ptrdiff_t>(runs[2 * p + 2]),
                         comp);
    });
    std::vector<std::size_t> next;
    next.reserve(runs.size() / 2 + 2);
    for (std::size_t r = 0; r < runs.size(); r += 2) next.push_back(runs[r]);
    if (runs.size() % 2 == 0) next.push_back(runs.back());
    runs = std::move(next);
  }
}

}  // namespace melody::util
