#include "util/csv.h"

#include <cstdio>
#include <iterator>
#include <stdexcept>

namespace melody::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(cell);
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

template <typename Range>
void CsvWriter::write_cells(const Range& cells) {
  bool first = true;
  for (const auto& cell : cells) {
    if (!first) out_ << ',';
    first = false;
    out_ << escape(cell);
  }
  out_ << '\n';
  if (!out_) throw std::runtime_error("CsvWriter: write failed for " + path_);
}

void CsvWriter::write_row(std::initializer_list<std::string_view> cells) {
  write_cells(cells);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  write_cells(cells);
}

void CsvWriter::write_numeric_row(std::initializer_list<double> cells) {
  write_numeric_row(std::vector<double>(cells));
}

void CsvWriter::write_numeric_row(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  char buf[64];
  for (double v : cells) {
    std::snprintf(buf, sizeof buf, "%.10g", v);
    formatted.emplace_back(buf);
  }
  write_cells(formatted);
}

CsvRows parse_csv(std::string_view text) {
  CsvRows rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_was_quoted = false;

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_was_quoted = false;
  };
  auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;  // doubled quote inside a quoted cell
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!cell.empty() || cell_was_quoted) {
          throw std::invalid_argument(
              "parse_csv: quote inside unquoted cell");
        }
        in_quotes = true;
        cell_was_quoted = true;
        break;
      case ',':
        end_cell();
        break;
      case '\r':
        if (i + 1 < text.size() && text[i + 1] == '\n') break;  // swallow CR
        end_row();
        break;
      case '\n':
        end_row();
        break;
      default:
        cell += c;
    }
  }
  if (in_quotes) {
    throw std::invalid_argument("parse_csv: unterminated quoted cell");
  }
  if (!cell.empty() || cell_was_quoted || !row.empty()) end_row();
  return rows;
}

CsvRows read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return parse_csv(text);
}

}  // namespace melody::util
