#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace melody::util {

double Rng::normal() noexcept {
  if (cached_normal_valid_) {
    cached_normal_valid_ = false;
    return cached_normal_;
  }
  // Box-Muller: two uniforms -> two independent standard normals.
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();  // log(0) guard
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  cached_normal_valid_ = true;
  return radius * std::cos(angle);
}

std::uint64_t Rng::bounded(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's multiply-shift rejection method.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t raw = (*this)();
    const auto product = static_cast<unsigned __int128>(raw) * bound;
    const auto low = static_cast<std::uint64_t>(product);
    if (low >= threshold) return static_cast<std::uint64_t>(product >> 64);
  }
}

}  // namespace melody::util
