#include "util/thread_pool.h"

#include <utility>

namespace melody::util {

ThreadPool::ThreadPool(std::size_t threads) {
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::post(std::function<void()> task) {
  if (threads_.empty()) {
    task();  // inline pool: run on the caller
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

struct SharedPoolState {
  std::unique_ptr<ThreadPool> pool;
  int count = 1;
};

SharedPoolState& shared_state() {
  static SharedPoolState state;
  return state;
}

}  // namespace

ThreadPool* shared_pool() noexcept { return shared_state().pool.get(); }

void set_shared_thread_count(int count) {
  if (count <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    count = hw > 0 ? static_cast<int>(hw) : 1;
  }
  SharedPoolState& state = shared_state();
  state.pool.reset();  // join the old pool before spawning the new one
  state.count = count;
  if (count > 1) {
    state.pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(count - 1));
  }
}

int shared_thread_count() noexcept { return shared_state().count; }

}  // namespace melody::util
