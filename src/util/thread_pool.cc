#include "util/thread_pool.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace melody::util {

namespace {

/// Wrap a task so that, when observability is on, the pool records how long
/// it sat in the queue and bumps the executed-jobs counter. The wrapper is
/// built at post() time only when collection is enabled, so the disabled
/// path keeps the original single-allocation std::function move.
std::function<void()> with_queue_metrics(std::function<void()> task) {
  return [task = std::move(task),
          enqueued = std::chrono::steady_clock::now()] {
    static obs::Summary& wait = obs::registry().timer("pool/queue_wait");
    static obs::Counter& jobs = obs::registry().counter("pool/jobs_executed");
    wait.record(std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - enqueued)
                    .count());
    jobs.add();
    task();
  };
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::post(std::function<void()> task) {
  if (threads_.empty()) {
    task();  // inline pool: run on the caller
    return;
  }
  if (obs::enabled()) task = with_queue_metrics(std::move(task));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

struct SharedPoolState {
  std::unique_ptr<ThreadPool> pool;
  int count = 1;
};

SharedPoolState& shared_state() {
  static SharedPoolState state;
  return state;
}

}  // namespace

ThreadPool* shared_pool() noexcept { return shared_state().pool.get(); }

void set_shared_thread_count(int count) {
  if (count <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    count = hw > 0 ? static_cast<int>(hw) : 1;
  }
  SharedPoolState& state = shared_state();
  state.pool.reset();  // join the old pool before spawning the new one
  state.count = count;
  if (count > 1) {
    state.pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(count - 1));
  }
}

int shared_thread_count() noexcept { return shared_state().count; }

}  // namespace melody::util
