#include "util/build_info.h"

#include "svc/protocol.h"

namespace melody::util {

FormatVersions format_versions() noexcept {
  // The checkpoint/trace/migration constants live as file-local details of
  // their writers; test_svc_formats pins these mirrors against the actual
  // byte streams so a version bump cannot drift silently.
  return FormatVersions{
      .proto = svc::kProtoVersion,
      .service_checkpoint = 3,
      .composed_checkpoint = 2,
      .trace = 1,
      .migration = 1,
  };
}

std::string build_git_sha() {
#ifdef MELODY_GIT_SHA
  return MELODY_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string build_info_line(const std::string& tool) {
  const FormatVersions v = format_versions();
  return tool + " " + build_git_sha() + " proto=" + std::to_string(v.proto) +
         " checkpoint=" + std::to_string(v.service_checkpoint) +
         " composed=" + std::to_string(v.composed_checkpoint) +
         " trace=" + std::to_string(v.trace) +
         " migration=" + std::to_string(v.migration);
}

}  // namespace melody::util
