// Minimal command-line flag parser for the tools/ binaries.
// Supports --key=value, --key value, and bare --switch (value "true");
// positional arguments are collected in order. No registration step: the
// caller queries typed getters with defaults.
//
// Self-documenting variant: every getter has an overload taking a value
// hint and a description. Those calls register the flag (in call order)
// into the instance's documentation table, and help() renders a usage
// message from it. A tool that funnels all its getter calls through one
// read_options(Flags&) function can print help by running that function
// over an empty Flags instance — the help text is generated from the same
// calls that parse, so the two can never drift apart.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace melody::util {

class Flags {
 public:
  /// Parse argv (argv[0] is skipped). Throws std::invalid_argument on a
  /// malformed flag (e.g. "---x" or empty flag name) or on a flag given
  /// more than once (in any mix of --k=v / --k v forms): a silently ignored
  /// repeat almost always means the caller edited the wrong occurrence.
  Flags(int argc, const char* const* argv);

  /// An empty instance (nothing set): run the tool's read_options over one
  /// to collect documentation for help().
  Flags() = default;

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Documenting overloads: identical parse behavior, but also register
  /// --name under `hint` (e.g. "N", "PATH"; empty for switches) with the
  /// given description and the rendered default for help().
  std::string get_string(const std::string& name, const std::string& fallback,
                         const std::string& hint,
                         const std::string& description) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback,
                       const std::string& hint,
                       const std::string& description) const;
  double get_double(const std::string& name, double fallback,
                    const std::string& hint,
                    const std::string& description) const;
  bool get_bool(const std::string& name, bool fallback,
                const std::string& hint,
                const std::string& description) const;
  /// Documented bare switch (has() + registration, no default shown).
  bool has_switch(const std::string& name,
                  const std::string& description) const;

  /// Register documentation without querying (rarely needed directly; the
  /// documenting getters call this). First registration of a name wins.
  void document(const std::string& name, const std::string& hint,
                const std::string& description,
                const std::string& rendered_default) const;

  /// Usage text generated from every documented flag, in registration
  /// order, e.g. help("melody_serve", "Serve the auction runtime.").
  /// A trailing "--help" entry is appended automatically.
  std::string help(const std::string& program,
                   const std::string& summary) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names of flags that were set but never queried — call after all
  /// getters to reject typos. (Queries are tracked per Flags instance.)
  std::vector<std::string> unused() const;

 private:
  struct Doc {
    std::string name;
    std::string hint;
    std::string description;
    std::string rendered_default;
  };

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  mutable std::vector<Doc> docs_;  // registration order
  std::vector<std::string> positional_;
};

}  // namespace melody::util
