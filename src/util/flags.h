// Minimal command-line flag parser for the tools/ binaries.
// Supports --key=value, --key value, and bare --switch (value "true");
// positional arguments are collected in order. No registration step: the
// caller queries typed getters with defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace melody::util {

class Flags {
 public:
  /// Parse argv (argv[0] is skipped). Throws std::invalid_argument on a
  /// malformed flag (e.g. "---x" or empty flag name) or on a flag given
  /// more than once (in any mix of --k=v / --k v forms): a silently ignored
  /// repeat almost always means the caller edited the wrong occurrence.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names of flags that were set but never queried — call after all
  /// getters to reject typos. (Queries are tracked per Flags instance.)
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace melody::util
