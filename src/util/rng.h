// Deterministic, portable random number generation for the MELODY simulator.
//
// All randomness in the library flows through util::Rng so that every
// experiment is bit-reproducible from a seed, independent of the standard
// library implementation (std::normal_distribution et al. are not portable
// across libstdc++ / libc++ / MSVC).
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace melody::util {

/// SplitMix64 step; used to expand a single 64-bit seed into a full
/// xoshiro256++ state. Also usable standalone as a fast hash/mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Counter-based stream derivation: hashes (master, stream, substream)
/// through a SplitMix64 chain into the seed of an independent generator.
/// The parallel execution layer derives one stream per (worker, run) pair —
/// Rng(derive_stream(master, worker_id, run)) — so the draws a simulation
/// makes are a pure function of those coordinates, never of thread
/// scheduling: serial and parallel execution produce bit-identical output.
constexpr std::uint64_t derive_stream(std::uint64_t master,
                                      std::uint64_t stream,
                                      std::uint64_t substream = 0) noexcept {
  std::uint64_t state = master;
  std::uint64_t mixed = splitmix64(state);
  state = mixed ^ stream;
  mixed = splitmix64(state);
  state = mixed ^ substream;
  return splitmix64(state);
}

/// xoshiro256++ pseudo-random generator with portable floating-point
/// derivations (uniform via 53-bit mantissa fill, normal via Box-Muller).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
    cached_normal_valid_ = false;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Raw 64 uniformly random bits.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in the closed interval [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Standard normal deviate via Box-Muller (portable across platforms).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Unbiased uniform integer in [0, bound) via Lemire rejection.
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Fisher-Yates shuffle of a vector, driven by this generator.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[bounded(i)]);
    }
  }

  /// Derive an independent child generator (for per-worker streams).
  Rng fork() noexcept { return Rng((*this)()); }

  /// Complete generator state for checkpointing. The cached Box-Muller
  /// deviate is part of the state: normal() produces deviates in pairs, so
  /// restoring the raw xoshiro words alone would desynchronize a stream
  /// captured between the two halves of a pair.
  struct State {
    std::uint64_t words[4]{};
    double cached_normal = 0.0;
    bool cached_normal_valid = false;

    bool operator==(const State&) const = default;
  };

  /// Capture the full state; restore() on any Rng resumes the exact stream.
  State state() const noexcept {
    State s;
    for (int i = 0; i < 4; ++i) s.words[i] = state_[i];
    s.cached_normal = cached_normal_;
    s.cached_normal_valid = cached_normal_valid_;
    return s;
  }

  void restore(const State& s) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = s.words[i];
    cached_normal_ = s.cached_normal;
    cached_normal_valid_ = s.cached_normal_valid;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_normal_ = 0.0;
  bool cached_normal_valid_ = false;
};

}  // namespace melody::util
