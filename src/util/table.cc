#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace melody::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_row(const std::string& label,
                           const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format(v, precision));
  add_row(std::move(cells));
}

std::string TablePrinter::format(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::render(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    out += "| ";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      out += cell;
      out.append(widths[c] - cell.size(), ' ');
      out += " | ";
    }
    if (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  std::string out;
  if (!title.empty()) {
    out += "== " + title + " ==\n";
  }
  emit_row(header_, out);
  out += "|-";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out.append(widths[c], '-');
    out += c + 1 < header_.size() ? "-|-" : "-|";
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void TablePrinter::print(const std::string& title) const {
  std::fputs(render(title).c_str(), stdout);
}

}  // namespace melody::util
