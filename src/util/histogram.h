// Fixed-width histogram with CDF extraction and ASCII rendering.
// Used to reproduce Fig. 5b (distribution of worker utilities).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace melody::util {

/// Equal-width histogram over [lo, hi). Values outside the range are
/// clamped into the first/last bin so no observation is silently dropped.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }

  /// Inclusive lower edge of the given bin.
  double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of the given bin.
  double bin_hi(std::size_t bin) const;

  /// Fraction of observations in the given bin (0 if empty histogram).
  double fraction(std::size_t bin) const;

  /// Cumulative distribution evaluated at each bin's upper edge.
  std::vector<double> cdf() const;

  /// Multi-line ASCII bar rendering (for bench output).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace melody::util
