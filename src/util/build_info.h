// Build identification for the CLI tools: one shared --version line so
// chaos/migration logs (and bug reports) pin exactly which build and which
// on-disk/wire format versions produced an artifact.
#pragma once

#include <string>

namespace melody::util {

/// The format versions this build reads and writes, gathered in one place.
struct FormatVersions {
  int proto;                // svc wire protocol (svc/protocol.h)
  int service_checkpoint;   // MLDYSVCK plain service body (svc/service.cc)
  int composed_checkpoint;  // MLDYSVCK composed router container (router.cc)
  int trace;                // MLDYTRC wire trace (svc/trace_log.cc)
  int migration;            // MLDYMIGR live-migration envelope (service.cc)
};

FormatVersions format_versions() noexcept;

/// The git sha this binary was built from ("unknown" outside a checkout).
std::string build_git_sha();

/// The one-line --version output, e.g.
///   melody_serve 1a2b3c4 proto=5 checkpoint=3 composed=2 trace=1 migration=1
std::string build_info_line(const std::string& tool);

}  // namespace melody::util
