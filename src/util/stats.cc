#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace melody::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("linear_fit: mismatched series lengths");
  }
  const std::size_t n = xs.size();
  if (n < 2) return {};
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 0.0;
  return fit;
}

LinearFit linear_trend(std::span<const double> ys) {
  std::vector<double> xs(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  return linear_fit(xs, ys);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double mean_absolute_error(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("mean_absolute_error: mismatched series lengths");
  }
  if (a.empty()) return 0.0;
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s / static_cast<double>(a.size());
}

double rmse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("rmse: mismatched series lengths");
  }
  if (a.empty()) return 0.0;
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s / static_cast<double>(a.size()));
}

double pearson(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("pearson: mismatched series lengths");
  }
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double saa = 0, sbb = 0, sab = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace melody::util
