#include "util/histogram.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace melody::util {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_hi");
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(counts_.size());
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::vector<double> Histogram::cdf() const {
  std::vector<double> out(counts_.size(), 0.0);
  std::size_t acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    out[i] = total_ > 0 ? static_cast<double>(acc) / static_cast<double>(total_)
                        : 0.0;
  }
  return out;
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak > 0 ? counts_[i] * width / peak : 0;
    std::snprintf(line, sizeof line, "[%8.3f, %8.3f) %8zu |", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace melody::util
