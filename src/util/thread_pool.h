// Fixed-size thread pool for the deterministic parallel execution layer.
//
// Design constraints (see DESIGN.md, "Parallel execution model"):
//   * No work stealing and no thread-local randomness: tasks are plain
//     closures pulled from one FIFO queue, and every parallel algorithm in
//     the library writes results by index, so output never depends on which
//     thread ran what.
//   * Nested-submit safe: pool tasks may enqueue further work and may call
//     util::parallel_for (the calling thread always participates in the
//     loop, so saturation cannot deadlock).
//   * Exceptions thrown inside submit()ted tasks are captured into the
//     returned future; parallel_for rethrows the first task exception on
//     the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace melody::util {

class ThreadPool {
 public:
  /// Spawns `threads` worker threads. A pool of size 0 is valid: post()
  /// and submit() then execute the task inline on the calling thread.
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue, then joins all workers. Do not post concurrently
  /// with destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for an inline pool).
  std::size_t size() const noexcept { return threads_.size(); }

  /// Enqueue fire-and-forget work. Never blocks; safe from inside a task.
  void post(std::function<void()> task);

  /// Enqueue work and receive its result (or its exception) via a future.
  template <typename F>
  auto submit(F fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    post([task] { (*task)(); });
    return future;
  }

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  bool stopping_ = false;
};

/// The process-wide pool used by Platform, MelodyEstimator::observe_run,
/// ParallelSweep and the greedy-core hot loops. Returns nullptr while the
/// configured thread count is <= 1 (the serial default), in which case
/// every parallel algorithm degenerates to its serial loop.
ThreadPool* shared_pool() noexcept;

/// Configure the shared pool's total concurrency (calling thread included):
/// `count` <= 0 selects std::thread::hardware_concurrency(), 1 disables
/// parallelism, n > 1 builds a pool with n - 1 workers. Rebuilds the pool;
/// not safe to call while parallel work is in flight.
void set_shared_thread_count(int count);

/// Current total concurrency of the shared pool (>= 1).
int shared_thread_count() noexcept;

}  // namespace melody::util
