// Minimal CSV writer for bench output (one file per reproduced figure),
// with RFC 4180-style quoting for string cells.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace melody::util {

/// Streams rows to a CSV file. The file is created on construction and
/// flushed/closed by the destructor (RAII); write failures throw.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  /// Write a header or data row of raw (string) cells.
  void write_row(std::initializer_list<std::string_view> cells);
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: format a numeric row with full double precision.
  void write_numeric_row(std::initializer_list<double> cells);
  void write_numeric_row(const std::vector<double>& cells);

  const std::string& path() const noexcept { return path_; }

  /// Escape a single cell per RFC 4180 (quote when it contains , " or \n).
  static std::string escape(std::string_view cell);

 private:
  template <typename Range>
  void write_cells(const Range& cells);

  std::string path_;
  std::ofstream out_;
};

/// Parsed CSV contents: rows of string cells.
using CsvRows = std::vector<std::vector<std::string>>;

/// Parse RFC 4180-style CSV text: quoted cells may contain commas,
/// doubled quotes, and newlines; both \n and \r\n row endings are
/// accepted; a trailing newline does not produce an empty row.
/// Throws std::invalid_argument on an unterminated quoted cell or stray
/// quote inside an unquoted cell.
CsvRows parse_csv(std::string_view text);

/// Read and parse a CSV file; throws std::runtime_error if unreadable.
CsvRows read_csv_file(const std::string& path);

}  // namespace melody::util
