// Grid-based Bayes filter implementing Theorem 2 (quality inference in
// general form):
//
//   p(S^r | S^{1..r-1}) alpha-hat(q^r)
//       = p(S^r | q^r) * integral alpha-hat(q^{r-1}) p(q^r | q^{r-1}) dq^{r-1}
//
// The posterior is represented as a density on a fixed quality grid, so any
// emission family mentioned in Section 5 (Gaussian, Gamma, Poisson, Beta,
// ...) can be plugged in as a log-density callback. Used
//   * to support non-Gaussian score models end to end, and
//   * as an independent numerical oracle for the closed-form Gaussian
//     filter (Theorem 3) in tests.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "lds/gaussian.h"
#include "lds/kalman.h"

namespace melody::lds {

/// log p(score | q): the per-score emission log-density.
using EmissionLogDensity = std::function<double(double score, double quality)>;

/// Standard emission families from Section 5 (all parameterized so that the
/// latent quality q is the distribution's mean, keeping quality and score
/// on the same scale as in Eq. 13).
EmissionLogDensity gaussian_emission(double variance);
/// Poisson with mean q (> 0); scores are non-negative counts.
EmissionLogDensity poisson_emission();
/// Gamma with mean q (> 0) and the given shape k (variance = q^2 / k).
EmissionLogDensity gamma_emission(double shape);
/// Beta on (0, 1) with mean q in (0, 1) and the given concentration
/// (alpha = q * concentration, beta = (1 - q) * concentration).
EmissionLogDensity beta_emission(double concentration);

/// A discretized posterior over worker quality.
class GridDensity {
 public:
  /// Uniform grid of `points` cells spanning [lo, hi].
  GridDensity(double lo, double hi, std::size_t points);

  /// Initialize from a (possibly unnormalized) density callback.
  void assign(const std::function<double(double)>& density);

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::size_t size() const noexcept { return weights_.size(); }
  double point(std::size_t index) const;
  double weight(std::size_t index) const { return weights_.at(index); }

  double mean() const;
  double variance() const;

  /// Density values, normalized to sum * cell_width == 1.
  std::span<const double> weights() const noexcept { return weights_; }
  double cell_width() const;

  /// Overwrite the density values verbatim (checkpoint restore). The values
  /// are taken as already normalized — no renormalization happens, so a
  /// weights() -> set_weights() round trip is bit-exact. Throws
  /// std::invalid_argument on a size mismatch.
  void set_weights(std::span<const double> weights);

 private:
  friend class GridFilter;
  void normalize();

  double lo_;
  double hi_;
  std::vector<double> weights_;
};

/// Sequential filter: transition with N(a q, gamma) (Eq. 12) and correct
/// with an arbitrary emission family.
class GridFilter {
 public:
  /// The posterior starts as the platform's initial Gaussian, truncated to
  /// the grid support.
  GridFilter(GridDensity prior_support, const Gaussian& initial_posterior,
             LdsParams params, EmissionLogDensity emission);

  /// One Theorem-2 step: predict through the transition, then multiply in
  /// the scores' joint emission likelihood. Empty score lists perform the
  /// prediction only. Returns the log marginal likelihood of the scores.
  double step(std::span<const double> scores);

  /// Overwrite the posterior density verbatim (checkpoint restore; see
  /// GridDensity::set_weights for the exactness contract).
  void restore_posterior(std::span<const double> weights) {
    posterior_.set_weights(weights);
  }

  const GridDensity& posterior() const noexcept { return posterior_; }
  double mean() const { return posterior_.mean(); }
  double variance() const { return posterior_.variance(); }

 private:
  GridDensity posterior_;
  LdsParams params_;
  EmissionLogDensity emission_;
};

}  // namespace melody::lds
