// Expectation-Maximization learner for the per-worker LDS hyper-parameters
// theta = {a, gamma, eta} (Algorithm 2 of the paper).
//
// E-step: RTS smoothing of the latent quality sequence given the current
// theta. M-step: closed-form maximizers of the expected complete-data
// log-likelihood (Eq. 15):
//   a*     = sum_t E[q^t q^{t-1}] / sum_t E[(q^{t-1})^2]
//   gamma* = (1/r) sum_t E[(q^t - a* q^{t-1})^2]
//   eta*   = (1/sum_t N_t) sum_t E[sum_j (s_j - q^t)^2]
#pragma once

#include <span>
#include <vector>

#include "lds/gaussian.h"
#include "lds/kalman.h"

namespace melody::lds {

struct EmOptions {
  int max_iterations = 50;
  /// Stop when every parameter's relative change falls below this.
  double tolerance = 1e-6;
  /// Floors keep the model proper when the data is degenerate (constant
  /// scores, single run).
  double min_variance = 1e-6;
  /// The transition coefficient is clamped to [-max_abs_a, max_abs_a];
  /// quality dynamics with |a| >> 1 diverge and never fit crowd workers.
  double max_abs_a = 4.0;
};

struct EmResult {
  LdsParams params;
  int iterations = 0;
  /// Filter log-likelihood after each iteration (monotone non-decreasing
  /// up to floor/clamp effects); the last entry is the final fit quality.
  std::vector<double> log_likelihood_trace;
};

/// Fit theta to one worker's score history by EM, starting from
/// initial_params. The platform-preset initial posterior alpha-hat(q^0)
/// anchors the latent chain and is not itself learned (matching Algorithm 3,
/// where mu-hat^0 / sigma-hat^0 are platform constants).
EmResult fit_lds(const Gaussian& initial_posterior,
                 std::span<const ScoreSet> history, const LdsParams& initial_params,
                 const EmOptions& options = {});

/// One M-step given smoothed moments; exposed for testing.
LdsParams m_step(const Gaussian& initial_posterior,
                 std::span<const ScoreSet> history,
                 const struct SmootherResult& moments, const EmOptions& options);

}  // namespace melody::lds
