// Scalar Gaussian distribution and the sufficient statistics of a run's
// score set — the two primitives of the paper's Linear Dynamical System
// quality model (Section 5).
#pragma once

#include <span>
#include <vector>

namespace melody::lds {

/// N(mean, var). Variance must be strictly positive for pdf evaluation;
/// the default-constructed value is the standard normal.
struct Gaussian {
  double mean = 0.0;
  double var = 1.0;

  double stddev() const noexcept;
  double pdf(double x) const;
  double log_pdf(double x) const;

  bool operator==(const Gaussian&) const = default;
};

/// Pointwise product of two Gaussian densities, renormalized (the posterior
/// of combining two independent Gaussian beliefs).
Gaussian product(const Gaussian& a, const Gaussian& b);

/// Sufficient statistics (N, S, SS) of the set of scores S_i^r a worker
/// received in one run. Everything downstream — Kalman update, smoother,
/// EM, log-likelihood — only needs these three numbers per run.
struct ScoreSet {
  int count = 0;
  double sum = 0.0;
  double sum_squares = 0.0;

  void add(double score) noexcept {
    ++count;
    sum += score;
    sum_squares += score * score;
  }

  double mean() const noexcept { return count > 0 ? sum / count : 0.0; }
  bool empty() const noexcept { return count == 0; }

  static ScoreSet from(std::span<const double> scores) noexcept {
    ScoreSet s;
    for (double score : scores) s.add(score);
    return s;
  }
};

/// A worker's full observation history: one ScoreSet per run, oldest first.
using ScoreHistory = std::vector<ScoreSet>;

}  // namespace melody::lds
