#include "lds/grid_filter.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace melody::lds {

EmissionLogDensity gaussian_emission(double variance) {
  if (variance <= 0.0) {
    throw std::invalid_argument("gaussian_emission: variance must be > 0");
  }
  return [variance](double score, double quality) {
    const double d = score - quality;
    return -0.5 * (std::log(2.0 * std::numbers::pi * variance) +
                   d * d / variance);
  };
}

EmissionLogDensity poisson_emission() {
  return [](double score, double quality) {
    if (quality <= 0.0) return -1e300;  // mean must be positive
    const double k = std::round(score);
    if (k < 0.0) return -1e300;
    return k * std::log(quality) - quality - std::lgamma(k + 1.0);
  };
}

EmissionLogDensity gamma_emission(double shape) {
  if (shape <= 0.0) {
    throw std::invalid_argument("gamma_emission: shape must be > 0");
  }
  return [shape](double score, double quality) {
    if (quality <= 0.0 || score <= 0.0) return -1e300;
    // Gamma(k, theta) with mean q => theta = q / k.
    const double scale = quality / shape;
    return (shape - 1.0) * std::log(score) - score / scale -
           std::lgamma(shape) - shape * std::log(scale);
  };
}

EmissionLogDensity beta_emission(double concentration) {
  if (concentration <= 0.0) {
    throw std::invalid_argument("beta_emission: concentration must be > 0");
  }
  return [concentration](double score, double quality) {
    if (quality <= 0.0 || quality >= 1.0 || score <= 0.0 || score >= 1.0) {
      return -1e300;
    }
    const double a = quality * concentration;
    const double b = (1.0 - quality) * concentration;
    return (a - 1.0) * std::log(score) + (b - 1.0) * std::log(1.0 - score) +
           std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  };
}

GridDensity::GridDensity(double lo, double hi, std::size_t points)
    : lo_(lo), hi_(hi) {
  if (!(lo < hi)) throw std::invalid_argument("GridDensity: lo must be < hi");
  if (points < 2) throw std::invalid_argument("GridDensity: need >= 2 points");
  weights_.assign(points, 1.0);
  normalize();
}

double GridDensity::point(std::size_t index) const {
  if (index >= weights_.size()) throw std::out_of_range("GridDensity::point");
  // Cell centers of a uniform partition of [lo, hi].
  const double width = cell_width();
  return lo_ + (static_cast<double>(index) + 0.5) * width;
}

double GridDensity::cell_width() const {
  return (hi_ - lo_) / static_cast<double>(weights_.size());
}

void GridDensity::assign(const std::function<double(double)>& density) {
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] = std::max(0.0, density(point(i)));
  }
  normalize();
}

void GridDensity::set_weights(std::span<const double> weights) {
  if (weights.size() != weights_.size()) {
    throw std::invalid_argument("GridDensity::set_weights: size mismatch");
  }
  for (double w : weights) {
    if (!(w >= 0.0)) {  // also rejects NaN
      throw std::invalid_argument(
          "GridDensity::set_weights: negative or NaN weight");
    }
  }
  weights_.assign(weights.begin(), weights.end());
}

void GridDensity::normalize() {
  double total = 0.0;
  for (double w : weights_) total += w;
  total *= cell_width();
  if (total <= 0.0) {
    throw std::domain_error("GridDensity: density vanished on the grid");
  }
  for (double& w : weights_) w /= total;
}

double GridDensity::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    m += point(i) * weights_[i];
  }
  return m * cell_width();
}

double GridDensity::variance() const {
  const double m = mean();
  double v = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    const double d = point(i) - m;
    v += d * d * weights_[i];
  }
  return v * cell_width();
}

GridFilter::GridFilter(GridDensity prior_support,
                       const Gaussian& initial_posterior, LdsParams params,
                       EmissionLogDensity emission)
    : posterior_(std::move(prior_support)),
      params_(params),
      emission_(std::move(emission)) {
  params_.validate();
  if (!emission_) throw std::invalid_argument("GridFilter: emission required");
  posterior_.assign([&](double q) { return initial_posterior.pdf(q); });
}

double GridFilter::step(std::span<const double> scores) {
  const std::size_t n = posterior_.size();
  const double width = posterior_.cell_width();

  // Predict: alpha(q') = integral alpha-hat(q) N(q'; a q, gamma) dq.
  std::vector<double> predicted(n, 0.0);
  const double norm = 1.0 / std::sqrt(2.0 * std::numbers::pi * params_.gamma);
  for (std::size_t from = 0; from < n; ++from) {
    const double mass = posterior_.weight(from) * width;
    if (mass <= 0.0) continue;
    const double center = params_.a * posterior_.point(from);
    for (std::size_t to = 0; to < n; ++to) {
      const double d = posterior_.point(to) - center;
      predicted[to] +=
          mass * norm * std::exp(-d * d / (2.0 * params_.gamma));
    }
  }

  // Correct: multiply by the emission likelihood of every score. Work in
  // log space with a running maximum for numerical stability.
  std::vector<double> log_post(n);
  double peak = -1e300;
  for (std::size_t i = 0; i < n; ++i) {
    double lp = predicted[i] > 0.0 ? std::log(predicted[i]) : -1e300;
    for (double s : scores) lp += emission_(s, posterior_.point(i));
    log_post[i] = lp;
    peak = std::max(peak, lp);
  }
  if (peak <= -1e299) {
    throw std::domain_error("GridFilter::step: zero likelihood everywhere");
  }
  double evidence = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    posterior_.weights_[i] = std::exp(log_post[i] - peak);
    evidence += posterior_.weights_[i];
  }
  evidence *= width;
  posterior_.normalize();
  // log p(S^r | S^{1..r-1}) = log integral of the unnormalized posterior.
  return std::log(evidence) + peak;
}

}  // namespace melody::lds
