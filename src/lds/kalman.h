// Forward inference for the scalar LDS quality model:
//   transition  q^r ~ N(a q^{r-1}, gamma)        (Eq. 12)
//   emission    s_j ~ N(q^r, eta), i.i.d. in-run (Eq. 13)
//
// The per-run posterior update is exactly Theorem 3 (Eqs. 17-18); the
// next-run estimated quality is Eq. 19 (mu^{r+1} = a * mu-hat^r).
#pragma once

#include <span>
#include <vector>

#include "lds/gaussian.h"

namespace melody::lds {

/// Per-worker LDS hyper-parameters theta = {a, gamma, eta}.
struct LdsParams {
  double a = 1.0;       // transition coefficient
  double gamma = 1.0;   // transition variance (> 0)
  double eta = 1.0;     // emission variance (> 0)

  bool operator==(const LdsParams&) const = default;
  /// Throws std::domain_error if a variance is not strictly positive.
  void validate() const;
};

/// Transition step: posterior alpha-hat(q^{r-1}) -> prior alpha(q^r)
/// via Eq. (3) with the Gaussian transition (Eq. 12):
/// N(a*mu, a^2*sigma + gamma).
///
/// predict/correct/filter_step are defined inline: they are the innermost
/// arithmetic of every estimator chain, and the batch observe_run loop
/// only streams when the filter folds into it instead of costing a call
/// per worker per run. One shared definition keeps every caller — batch
/// loop, scalar reference, EM re-filter — on the identical IEEE-754
/// operation sequence, which the bit-identity tests rely on.
inline Gaussian predict(const Gaussian& posterior, const LdsParams& params) {
  return {params.a * posterior.mean,
          params.a * params.a * posterior.var + params.gamma};
}

/// Measurement step: prior alpha(q^r) + scores -> posterior alpha-hat(q^r).
/// With an empty score set the prior is returned unchanged (the worker was
/// not observed this run).
inline Gaussian correct(const Gaussian& prior, const ScoreSet& scores,
                        const LdsParams& params) {
  if (scores.empty()) return prior;
  // Eqs. (17)-(18) with K = prior.var: posterior precision is the prior
  // precision plus N/eta; the mean weighs the prior by eta and the score
  // sum by K.
  const double k = prior.var;
  const double n = scores.count;
  const double denom = n * k + params.eta;
  return {(params.eta * prior.mean + k * scores.sum) / denom,
          k * params.eta / denom};
}

/// One full Theorem-3 step: previous posterior -> this run's posterior.
inline Gaussian filter_step(const Gaussian& previous_posterior,
                            const ScoreSet& scores, const LdsParams& params) {
  return correct(predict(previous_posterior, params), scores, params);
}

/// Log marginal likelihood log p(S^r | S^{1..r-1}) of one run's score set
/// under the prior alpha(q^r). Zero for an empty set.
double log_marginal(const Gaussian& prior, const ScoreSet& scores,
                    const LdsParams& params);

/// Results of filtering a whole history.
struct FilterResult {
  std::vector<Gaussian> priors;      // alpha(q^r), one per run
  std::vector<Gaussian> posteriors;  // alpha-hat(q^r), one per run
  double log_likelihood = 0.0;       // sum of per-run log marginals
};

/// Run the filter over a history, starting from the platform-preset initial
/// posterior alpha-hat(q^0) = N(mu0, sigma0).
FilterResult filter(const Gaussian& initial_posterior,
                    std::span<const ScoreSet> history, const LdsParams& params);

/// Total log-likelihood of a history (convenience wrapper around filter()).
double log_likelihood(const Gaussian& initial_posterior,
                      std::span<const ScoreSet> history, const LdsParams& params);

}  // namespace melody::lds
