#include "lds/kalman.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace melody::lds {

void LdsParams::validate() const {
  if (gamma <= 0.0) throw std::domain_error("LdsParams: gamma must be > 0");
  if (eta <= 0.0) throw std::domain_error("LdsParams: eta must be > 0");
}

double log_marginal(const Gaussian& prior, const ScoreSet& scores,
                    const LdsParams& params) {
  if (scores.empty()) return 0.0;
  // p(S) = integral over q of N(q; m, K) * prod_j N(s_j; q, eta).
  // Completing the square: with A = N/eta + 1/K, B = S/eta + m/K,
  // C = SS/eta + m^2/K,
  //   log p = -(N/2) log(2*pi*eta) - (1/2) log(K*A) + (B^2/A - C) / 2.
  const double k = prior.var;
  const double m = prior.mean;
  const double n = scores.count;
  const double a_term = n / params.eta + 1.0 / k;
  const double b_term = scores.sum / params.eta + m / k;
  const double c_term = scores.sum_squares / params.eta + m * m / k;
  return -0.5 * n * std::log(2.0 * std::numbers::pi * params.eta) -
         0.5 * std::log(k * a_term) + 0.5 * (b_term * b_term / a_term - c_term);
}

FilterResult filter(const Gaussian& initial_posterior,
                    std::span<const ScoreSet> history, const LdsParams& params) {
  params.validate();
  if (initial_posterior.var <= 0.0) {
    throw std::domain_error("filter: initial posterior variance must be > 0");
  }
  FilterResult result;
  result.priors.reserve(history.size());
  result.posteriors.reserve(history.size());
  Gaussian posterior = initial_posterior;
  for (const ScoreSet& scores : history) {
    const Gaussian prior = predict(posterior, params);
    result.log_likelihood += log_marginal(prior, scores, params);
    posterior = correct(prior, scores, params);
    result.priors.push_back(prior);
    result.posteriors.push_back(posterior);
  }
  return result;
}

double log_likelihood(const Gaussian& initial_posterior,
                      std::span<const ScoreSet> history,
                      const LdsParams& params) {
  return filter(initial_posterior, history, params).log_likelihood;
}

}  // namespace melody::lds
