#include "lds/smoother.h"

namespace melody::lds {

SmootherResult smooth(const Gaussian& initial_posterior,
                      std::span<const ScoreSet> history,
                      const LdsParams& params) {
  params.validate();
  const std::size_t r = history.size();

  // Forward pass over the augmented sequence q^0..q^r. q^0 carries no
  // observation: its filtered posterior is the preset initial distribution.
  std::vector<Gaussian> filtered(r + 1);
  std::vector<Gaussian> predicted(r + 1);  // predicted[t] = p(q^t | S^1..t-1)
  filtered[0] = initial_posterior;
  predicted[0] = initial_posterior;  // unused; kept for index symmetry
  for (std::size_t t = 1; t <= r; ++t) {
    predicted[t] = predict(filtered[t - 1], params);
    filtered[t] = correct(predicted[t], history[t - 1], params);
  }

  // Backward (RTS) pass. With smoothing gain
  //   J_t = a * Var(q^t | S^1..t) / Var(q^{t+1} | S^1..t):
  //   mean:  m~_t = m_t + J_t (m~_{t+1} - a m_t)
  //   var:   v~_t = v_t + J_t^2 (v~_{t+1} - P_{t+1})
  //   cross: Cov(q^t, q^{t+1} | all) = J_t * v~_{t+1}
  SmootherResult result;
  result.smoothed.assign(r + 1, Gaussian{});
  result.cross_covariance.assign(r + 1, 0.0);
  result.smoothed[r] = filtered[r];
  for (std::size_t t = r; t > 0; --t) {
    const Gaussian& f = filtered[t - 1];
    const double p_next = predicted[t].var;  // P_{t} = a^2 v_{t-1} + gamma
    const double gain = params.a * f.var / p_next;
    const Gaussian& next = result.smoothed[t];
    result.smoothed[t - 1] = {
        f.mean + gain * (next.mean - params.a * f.mean),
        f.var + gain * gain * (next.var - p_next)};
    result.cross_covariance[t] = gain * next.var;
  }
  return result;
}

}  // namespace melody::lds
