// Rauch-Tung-Striebel smoother for the scalar LDS quality model, the
// E-step engine of Algorithm 2 (EM parameters learning).
//
// The smoothed sequence includes the platform-preset initial state q^0
// (index 0) followed by q^1..q^r (indices 1..r), so transition expectations
// E[q^t q^{t-1}] are defined for every t >= 1.
#pragma once

#include <span>
#include <vector>

#include "lds/gaussian.h"
#include "lds/kalman.h"

namespace melody::lds {

/// Smoothed posteriors p(q^t | S^1..S^r) and the cross-moments the EM
/// M-step needs. All vectors have length r + 1 (index 0 is q^0); the
/// cross-moment vectors' entry t refers to the pair (q^{t-1}, q^t), so
/// their index 0 is unused and kept at zero.
struct SmootherResult {
  std::vector<Gaussian> smoothed;       // p(q^t | all scores)
  std::vector<double> cross_covariance; // Cov(q^{t-1}, q^t | all scores)

  /// E[q^t] under the smoothed posterior.
  double mean(std::size_t t) const { return smoothed.at(t).mean; }
  /// E[(q^t)^2] = var + mean^2.
  double second_moment(std::size_t t) const {
    const Gaussian& g = smoothed.at(t);
    return g.var + g.mean * g.mean;
  }
  /// E[q^{t-1} q^t] = Cov + mean_{t-1} * mean_t, valid for t >= 1.
  double cross_moment(std::size_t t) const {
    return cross_covariance.at(t) +
           smoothed.at(t - 1).mean * smoothed.at(t).mean;
  }
};

/// Full forward-backward smoothing pass over a worker's history.
SmootherResult smooth(const Gaussian& initial_posterior,
                      std::span<const ScoreSet> history,
                      const LdsParams& params);

}  // namespace melody::lds
