#include "lds/gaussian.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace melody::lds {

double Gaussian::stddev() const noexcept { return std::sqrt(var); }

double Gaussian::pdf(double x) const { return std::exp(log_pdf(x)); }

double Gaussian::log_pdf(double x) const {
  if (var <= 0.0) throw std::domain_error("Gaussian::log_pdf: var must be > 0");
  const double d = x - mean;
  return -0.5 * (std::log(2.0 * std::numbers::pi * var) + d * d / var);
}

Gaussian product(const Gaussian& a, const Gaussian& b) {
  if (a.var <= 0.0 || b.var <= 0.0) {
    throw std::domain_error("Gaussian product: variances must be > 0");
  }
  const double precision = 1.0 / a.var + 1.0 / b.var;
  const double var = 1.0 / precision;
  return {var * (a.mean / a.var + b.mean / b.var), var};
}

}  // namespace melody::lds
