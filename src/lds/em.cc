#include "lds/em.h"

#include <algorithm>
#include <cmath>

#include "lds/smoother.h"

namespace melody::lds {

LdsParams m_step(const Gaussian& initial_posterior,
                 std::span<const ScoreSet> history,
                 const SmootherResult& moments, const EmOptions& options) {
  (void)initial_posterior;  // the q^0 prior is fixed, not re-estimated
  const std::size_t r = history.size();
  LdsParams out;

  // a* = sum_t E[q^t q^{t-1}] / sum_t E[(q^{t-1})^2].
  double cross_sum = 0.0;
  double prev_sq_sum = 0.0;
  for (std::size_t t = 1; t <= r; ++t) {
    cross_sum += moments.cross_moment(t);
    prev_sq_sum += moments.second_moment(t - 1);
  }
  out.a = prev_sq_sum > 0.0 ? cross_sum / prev_sq_sum : 1.0;
  out.a = std::clamp(out.a, -options.max_abs_a, options.max_abs_a);

  // gamma* = (1/r) sum_t E[(q^t - a q^{t-1})^2]
  //        = (1/r) sum_t (E[q_t^2] - 2a E[q_t q_{t-1}] + a^2 E[q_{t-1}^2]).
  double gamma_sum = 0.0;
  for (std::size_t t = 1; t <= r; ++t) {
    gamma_sum += moments.second_moment(t) - 2.0 * out.a * moments.cross_moment(t) +
                 out.a * out.a * moments.second_moment(t - 1);
  }
  out.gamma = r > 0 ? gamma_sum / static_cast<double>(r) : 1.0;
  out.gamma = std::max(out.gamma, options.min_variance);

  // eta* = (1/sum N_t) sum_t (SS_t - 2 S_t E[q_t] + N_t E[q_t^2]).
  double eta_sum = 0.0;
  double observations = 0.0;
  for (std::size_t t = 1; t <= r; ++t) {
    const ScoreSet& s = history[t - 1];
    if (s.empty()) continue;
    eta_sum += s.sum_squares - 2.0 * s.sum * moments.mean(t) +
               s.count * moments.second_moment(t);
    observations += s.count;
  }
  out.eta = observations > 0.0 ? eta_sum / observations : 1.0;
  out.eta = std::max(out.eta, options.min_variance);
  return out;
}

EmResult fit_lds(const Gaussian& initial_posterior,
                 std::span<const ScoreSet> history,
                 const LdsParams& initial_params, const EmOptions& options) {
  EmResult result;
  result.params = initial_params;
  result.params.gamma = std::max(result.params.gamma, options.min_variance);
  result.params.eta = std::max(result.params.eta, options.min_variance);
  if (history.empty()) return result;

  auto relative_change = [](double a, double b) {
    return std::abs(a - b) / std::max({std::abs(a), std::abs(b), 1e-12});
  };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const SmootherResult moments =
        smooth(initial_posterior, history, result.params);
    const LdsParams updated =
        m_step(initial_posterior, history, moments, options);
    result.log_likelihood_trace.push_back(
        log_likelihood(initial_posterior, history, updated));
    ++result.iterations;

    const bool converged =
        relative_change(updated.a, result.params.a) < options.tolerance &&
        relative_change(updated.gamma, result.params.gamma) < options.tolerance &&
        relative_change(updated.eta, result.params.eta) < options.tolerance;
    result.params = updated;
    if (converged) break;
  }
  return result;
}

}  // namespace melody::lds
