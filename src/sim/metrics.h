// Per-run metric records and aggregation for the long-term experiments
// (Fig. 9: average estimation error of quality and requester utility).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace melody::sim {

/// Everything the evaluation section measures about one run.
struct RunRecord {
  int run = 0;
  /// Utility by estimated quality: tasks whose received estimated quality
  /// meets Q_j (this is what the mechanism optimizes).
  std::size_t estimated_utility = 0;
  /// True utility: tasks whose received *latent* quality meets Q_j
  /// (Section 7.7's "requester's real utility").
  std::size_t true_utility = 0;
  /// Mean |q_i^r - mu_i^r| over the qualified workers W^r.
  double estimation_error = 0.0;
  double total_payment = 0.0;
  std::size_t assignments = 0;
  std::size_t qualified_workers = 0;
  /// Fault-injection tallies (all zero when no FaultPlan is active):
  /// workers absent this run by the no-show coin vs. a churn window, and
  /// scores lost or replaced by outliers before the estimator saw them.
  std::size_t no_shows = 0;
  std::size_t churned_out = 0;
  std::size_t scores_dropped = 0;
  std::size_t scores_corrupted = 0;

  bool operator==(const RunRecord&) const = default;
};

/// Averages over a window of runs.
struct MetricSummary {
  double mean_estimated_utility = 0.0;
  double mean_true_utility = 0.0;
  double mean_estimation_error = 0.0;
  double mean_total_payment = 0.0;
  double mean_assignments = 0.0;
};

MetricSummary summarize(std::span<const RunRecord> records);

/// Summary over records[skip..] — used to drop the warm-up window when
/// comparing estimators (all estimators share initial settings, so early
/// runs are identical by construction).
MetricSummary summarize_after(std::span<const RunRecord> records,
                              std::size_t skip);

/// Merge per-shard run records (one vector per shard, each ordered by run)
/// into one global trajectory: result[r] aggregates every shard's record
/// for run r+1. Counts and payments sum; estimation_error is the
/// qualified-worker-weighted mean, i.e. exactly the value one platform
/// holding the union of the qualified workers would have reported. Shards
/// that have not reached a run yet simply contribute nothing to it; the
/// result spans the longest shard. The merge is a deterministic fold in
/// shard order, so a K-shard deployment's Fig-9 trajectory is a pure
/// function of its per-shard trajectories.
std::vector<RunRecord> merge_run_records(
    const std::vector<std::vector<RunRecord>>& shards);

}  // namespace melody::sim
