#include "sim/analytics.h"

#include <cmath>
#include <cstdio>

#include "util/stats.h"

namespace melody::sim {

TrajectoryKind classify_trajectory(std::span<const double> quality,
                                   const ClassificationCriteria& c) {
  if (quality.size() < c.min_points) return TrajectoryKind::kStable;
  const util::LinearFit fit = util::linear_trend(quality);
  if (fit.slope > c.trend_slope) return TrajectoryKind::kRising;
  if (fit.slope < -c.trend_slope) return TrajectoryKind::kDeclining;
  if (util::variance(quality) >= c.fluctuation_variance) {
    return TrajectoryKind::kFluctuating;
  }
  return TrajectoryKind::kStable;
}

double PopulationReport::fraction(TrajectoryKind kind) const {
  if (total == 0) return 0.0;
  std::size_t count = 0;
  switch (kind) {
    case TrajectoryKind::kRising: count = rising; break;
    case TrajectoryKind::kDeclining: count = declining; break;
    case TrajectoryKind::kFluctuating: count = fluctuating; break;
    case TrajectoryKind::kStable: count = stable; break;
  }
  return static_cast<double>(count) / static_cast<double>(total);
}

PopulationReport analyze_population(
    const std::vector<std::vector<double>>& quality_histories,
    const ClassificationCriteria& c) {
  PopulationReport report;
  double final_sum = 0.0;
  double change_sum = 0.0;
  for (const auto& history : quality_histories) {
    ++report.total;
    switch (classify_trajectory(history, c)) {
      case TrajectoryKind::kRising: ++report.rising; break;
      case TrajectoryKind::kDeclining: ++report.declining; break;
      case TrajectoryKind::kFluctuating: ++report.fluctuating; break;
      case TrajectoryKind::kStable: ++report.stable; break;
    }
    if (!history.empty()) {
      final_sum += history.back();
      change_sum += history.back() - history.front();
    }
  }
  if (report.total > 0) {
    report.mean_final_quality = final_sum / static_cast<double>(report.total);
    report.mean_change = change_sum / static_cast<double>(report.total);
  }
  return report;
}

std::string to_string(const PopulationReport& report) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%zu workers: rising %.1f%%, declining %.1f%%, fluctuating "
                "%.1f%%, stable %.1f%%; mean final quality %.2f "
                "(mean change %+.2f)",
                report.total, 100.0 * report.fraction(TrajectoryKind::kRising),
                100.0 * report.fraction(TrajectoryKind::kDeclining),
                100.0 * report.fraction(TrajectoryKind::kFluctuating),
                100.0 * report.fraction(TrajectoryKind::kStable),
                report.mean_final_quality, report.mean_change);
  return buf;
}

}  // namespace melody::sim
