#include "sim/parallel_sweep.h"

#include <stdexcept>

#include "sim/platform.h"
#include "sim/worker_model.h"
#include "util/parallel_for.h"

namespace melody::sim {

void SweepAccumulators::add(const RunRecord& record) {
  estimated_utility.add(static_cast<double>(record.estimated_utility));
  true_utility.add(static_cast<double>(record.true_utility));
  estimation_error.add(record.estimation_error);
  total_payment.add(record.total_payment);
  assignments.add(static_cast<double>(record.assignments));
}

void SweepAccumulators::merge(const SweepAccumulators& other) {
  estimated_utility.merge(other.estimated_utility);
  true_utility.merge(other.true_utility);
  estimation_error.merge(other.estimation_error);
  total_payment.merge(other.total_payment);
  assignments.merge(other.assignments);
}

void ParallelSweep::add_seed_grid(const std::string& label_prefix,
                                  const LongTermScenario& scenario,
                                  std::span<const std::uint64_t> seeds,
                                  MechanismFactory make_mechanism,
                                  EstimatorFactory make_estimator) {
  for (std::uint64_t seed : seeds) {
    SweepJob job;
    job.label = label_prefix + "/s" + std::to_string(seed);
    job.scenario = scenario;
    job.population_seed = seed;
    job.platform_seed = seed + 1;
    job.make_mechanism = make_mechanism;
    job.make_estimator = make_estimator;
    add(std::move(job));
  }
}

SweepResult ParallelSweep::run() const {
  SweepResult result;
  result.replicas.resize(jobs_.size());

  // Replicas write only their own slot; parallel_for rethrows the first
  // replica exception after the barrier. Grain 1: jobs are heavyweight.
  util::parallel_for(util::shared_pool(), jobs_.size(), [&](std::size_t j) {
    const SweepJob& job = jobs_[j];
    if (!job.make_mechanism || !job.make_estimator) {
      throw std::invalid_argument("ParallelSweep: job '" + job.label +
                                  "' is missing a factory");
    }
    auto mechanism = job.make_mechanism();
    auto estimator = job.make_estimator();
    util::Rng population_rng(job.population_seed);
    Platform platform(
        job.scenario, *mechanism, *estimator,
        sample_population(job.scenario.population_config(), population_rng),
        job.platform_seed);
    SweepReplica& replica = result.replicas[j];
    replica.label = job.label;
    replica.records = platform.run_all();
    for (const RunRecord& record : replica.records) replica.stats.add(record);
  });

  for (const SweepReplica& replica : result.replicas) {
    result.merged.merge(replica.stats);
  }
  return result;
}

}  // namespace melody::sim
