#include "sim/fault.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace melody::sim {

namespace {

/// Root of every fault stream: one mix separating it from the score
/// streams derived directly from master_seed.
std::uint64_t fault_master(const FaultPlan& plan, std::uint64_t master_seed) {
  return util::derive_stream(master_seed, plan.salt);
}

void check_rate(double rate, const char* name) {
  if (!(rate >= 0.0 && rate <= 1.0)) {
    throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                " must be in [0, 1]");
  }
}

double parse_rate(const std::string& value, const std::string& key) {
  try {
    std::size_t consumed = 0;
    const double rate = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return rate;
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan: " + key + " expects a number, got '" +
                                value + "'");
  }
}

std::int64_t parse_int(const std::string& value, const std::string& key) {
  try {
    std::size_t consumed = 0;
    const std::int64_t parsed = std::stoll(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan: " + key +
                                " expects an integer, got '" + value + "'");
  }
}

}  // namespace

bool FaultPlan::active() const noexcept {
  return no_show_rate > 0.0 || score_drop_rate > 0.0 ||
         score_corrupt_rate > 0.0 || churn_rate > 0.0;
}

void FaultPlan::validate() const {
  check_rate(no_show_rate, "no-show");
  check_rate(score_drop_rate, "drop");
  check_rate(score_corrupt_rate, "corrupt");
  check_rate(churn_rate, "churn");
  if (churn_min_absence < 1 || churn_max_absence < churn_min_absence) {
    throw std::invalid_argument(
        "FaultPlan: need 1 <= churn-min <= churn-max");
  }
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream in(spec);
  std::string entry;
  while (std::getline(in, entry, ',')) {
    if (entry.empty()) continue;
    const auto equals = entry.find('=');
    if (equals == std::string::npos) {
      throw std::invalid_argument("FaultPlan: expected key=value, got '" +
                                  entry + "'");
    }
    const std::string key = entry.substr(0, equals);
    const std::string value = entry.substr(equals + 1);
    if (key == "no-show") {
      plan.no_show_rate = parse_rate(value, key);
    } else if (key == "drop") {
      plan.score_drop_rate = parse_rate(value, key);
    } else if (key == "corrupt") {
      plan.score_corrupt_rate = parse_rate(value, key);
    } else if (key == "churn") {
      plan.churn_rate = parse_rate(value, key);
    } else if (key == "churn-min") {
      plan.churn_min_absence = static_cast<int>(parse_int(value, key));
    } else if (key == "churn-max") {
      plan.churn_max_absence = static_cast<int>(parse_int(value, key));
    } else if (key == "salt") {
      plan.salt = static_cast<std::uint64_t>(parse_int(value, key));
    } else {
      throw std::invalid_argument("FaultPlan: unknown key '" + key + "'");
    }
  }
  plan.validate();
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  out.precision(17);
  out << "no-show=" << no_show_rate << ",drop=" << score_drop_rate
      << ",corrupt=" << score_corrupt_rate << ",churn=" << churn_rate
      << ",churn-min=" << churn_min_absence
      << ",churn-max=" << churn_max_absence << ",salt=" << salt;
  return out.str();
}

Absence absence_for(const FaultPlan& plan, std::uint64_t master_seed,
                    auction::WorkerId worker, int run, int horizon) {
  if (!plan.active()) return Absence::kPresent;
  const std::uint64_t root = fault_master(plan, master_seed);
  const auto worker_stream = static_cast<std::uint64_t>(worker);
  if (plan.churn_rate > 0.0) {
    // The churn window is a pure per-worker function (substream 0), so the
    // same worker departs over the same runs regardless of when or where
    // the question is asked.
    util::Rng churn(util::derive_stream(root, worker_stream, 0));
    if (churn.bernoulli(plan.churn_rate)) {
      const int start =
          static_cast<int>(churn.uniform_int(1, std::max(1, horizon)));
      const int duration = static_cast<int>(churn.uniform_int(
          plan.churn_min_absence, plan.churn_max_absence));
      if (run >= start && run < start + duration) return Absence::kChurned;
    }
  }
  if (plan.no_show_rate > 0.0) {
    util::Rng absence(util::derive_stream(
        root, worker_stream, 2 * static_cast<std::uint64_t>(run)));
    if (absence.bernoulli(plan.no_show_rate)) return Absence::kNoShow;
  }
  return Absence::kPresent;
}

lds::ScoreSet generate_faulted_scores(const FaultPlan& plan,
                                      const ScoreModel& model,
                                      double latent_quality, int task_count,
                                      util::Rng& score_stream,
                                      std::uint64_t master_seed,
                                      auction::WorkerId worker, int run,
                                      ScoreFaultCounts& counts) {
  if (plan.score_drop_rate <= 0.0 && plan.score_corrupt_rate <= 0.0) {
    return generate_scores(model, latent_quality, task_count, score_stream);
  }
  util::Rng faults(util::derive_stream(
      fault_master(plan, master_seed), static_cast<std::uint64_t>(worker),
      2 * static_cast<std::uint64_t>(run) + 1));
  lds::ScoreSet scores;
  for (int t = 0; t < task_count; ++t) {
    double score = generate_score(model, latent_quality, score_stream);
    if (faults.bernoulli(plan.score_drop_rate)) {
      ++counts.dropped;
      continue;
    }
    if (faults.bernoulli(plan.score_corrupt_rate)) {
      score = faults.bernoulli(0.5) ? model.min_score : model.max_score;
      ++counts.corrupted;
    }
    scores.add(score);
  }
  return scores;
}

}  // namespace melody::sim
