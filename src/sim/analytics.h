// Worker-pool analytics: classify quality histories into the paper's four
// Fig. 1 patterns and summarize a population — the reporting a platform
// operator runs over tracked estimates (or, in simulation, ground truth).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sim/trajectory.h"

namespace melody::sim {

/// Thresholds for trend classification on the [1, 10] score scale.
struct ClassificationCriteria {
  /// Minimum |slope| per run to call a curve rising/declining; curves
  /// flatter than this are stable or fluctuating depending on variance.
  double trend_slope = 0.002;
  /// Variance above which a flat-trend curve is "fluctuating" rather than
  /// "stable" (matches StabilityCriteria::max_variance).
  double fluctuation_variance = 1.0;
  /// Minimum points for a meaningful classification.
  std::size_t min_points = 10;
};

/// Classify one quality curve. Curves shorter than min_points, and exactly
/// flat short curves, classify as kStable (no evidence of dynamics).
TrajectoryKind classify_trajectory(std::span<const double> quality,
                                   const ClassificationCriteria& c = {});

/// Per-kind population counts plus summary statistics.
struct PopulationReport {
  std::size_t total = 0;
  std::size_t rising = 0;
  std::size_t declining = 0;
  std::size_t fluctuating = 0;
  std::size_t stable = 0;
  double mean_final_quality = 0.0;
  double mean_change = 0.0;  // mean (last - first) across workers

  double fraction(TrajectoryKind kind) const;
};

/// Classify every worker's curve and aggregate.
PopulationReport analyze_population(
    const std::vector<std::vector<double>>& quality_histories,
    const ClassificationCriteria& c = {});

/// Human-readable one-line summary ("rising 31%, declining 28%, ...").
std::string to_string(const PopulationReport& report);

}  // namespace melody::sim
