// Versioned binary snapshots of the Platform (checkpoint/resume support).
//
// Layout (all integers little-endian, see util/binio.h):
//   magic "MLDYCKPT" (8 bytes) | u32 version
//   u64 master_seed | i32 run
//   sequential RNG: 4 x u64 words | f64 cached_normal | u8 cached_valid
//   fault plan: f64 no_show | f64 drop | f64 corrupt | f64 churn
//               | i32 churn_min | i32 churn_max | u64 salt
//   workers: u64 count, then per worker (in platform order — bid collection
//            iterates this order against the sequential RNG, so it is part
//            of the deterministic state, NOT sorted):
//            i32 id | f64 cost | i32 frequency | u64 len | f64 latent...
//   policies: u64 count, sorted by id (map iteration order is not
//             deterministic; sorting keeps snapshot bytes reproducible):
//             i32 id | f64 cheat_p | u8 direction | u8 cheat_cost
//             | u8 cheat_freq | f64 cost_mag | i32 freq_mag
//   utilities: u64 count, sorted by id: i32 id | f64 total
//   estimator: length-prefixed blob produced by QualityEstimator::save
//   [v2 only — written iff the bid book is enabled:]
//   withdrawn: u64 count, sorted by id: i32 id
//   bid book: BidBook::save blob (own magic + ladder-ordered entries)
//
// Version policy: bump kVersion on any layout change; load() rejects
// versions it does not understand rather than guessing. A platform that
// never opts into the bid book keeps writing byte-identical v1 snapshots
// (the golden-digest lattice pins those bytes); enable_bid_book() switches
// its snapshots to v2. load() accepts both: a v1 blob restores a
// book-enabled platform with an empty book, which the next step()'s diff
// repopulates — allocation is unaffected because the ladder is a canonical
// function of the live bids.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/platform.h"
#include "util/binio.h"

namespace melody::sim {

namespace {

constexpr char kMagic[8] = {'M', 'L', 'D', 'Y', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kVersionBidBook = 2;

namespace binio = util::binio;

}  // namespace

void Platform::save(std::ostream& out) const {
  out.write(kMagic, sizeof kMagic);
  binio::write_u32(out, bid_book_enabled_ ? kVersionBidBook : kVersion);
  binio::write_u64(out, master_seed_);
  binio::write_i32(out, run_);

  const util::Rng::State rng = rng_.state();
  for (int i = 0; i < 4; ++i) binio::write_u64(out, rng.words[i]);
  binio::write_f64(out, rng.cached_normal);
  binio::write_u8(out, rng.cached_normal_valid ? 1 : 0);

  binio::write_f64(out, fault_plan_.no_show_rate);
  binio::write_f64(out, fault_plan_.score_drop_rate);
  binio::write_f64(out, fault_plan_.score_corrupt_rate);
  binio::write_f64(out, fault_plan_.churn_rate);
  binio::write_i32(out, fault_plan_.churn_min_absence);
  binio::write_i32(out, fault_plan_.churn_max_absence);
  binio::write_u64(out, fault_plan_.salt);

  binio::write_u64(out, workers_.size());
  for (const SimWorker& w : workers_) {
    binio::write_i32(out, w.id());
    binio::write_f64(out, w.true_bid().cost);
    binio::write_i32(out, w.true_bid().frequency);
    const int horizon = w.horizon();
    binio::write_u64(out, static_cast<std::uint64_t>(horizon));
    for (int r = 1; r <= horizon; ++r) {
      binio::write_f64(out, w.latent_quality(r));
    }
  }

  std::vector<std::pair<auction::WorkerId, BidPolicy>> policies(
      policies_.begin(), policies_.end());
  std::sort(policies.begin(), policies.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  binio::write_u64(out, policies.size());
  for (const auto& [id, p] : policies) {
    binio::write_i32(out, id);
    binio::write_f64(out, p.cheat_probability);
    binio::write_u8(out, static_cast<std::uint8_t>(p.direction));
    binio::write_u8(out, p.cheat_cost ? 1 : 0);
    binio::write_u8(out, p.cheat_frequency ? 1 : 0);
    binio::write_f64(out, p.cost_magnitude);
    binio::write_i32(out, p.frequency_magnitude);
  }

  std::vector<std::pair<auction::WorkerId, double>> utilities(
      total_utility_.begin(), total_utility_.end());
  std::sort(utilities.begin(), utilities.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  binio::write_u64(out, utilities.size());
  for (const auto& [id, total] : utilities) {
    binio::write_i32(out, id);
    binio::write_f64(out, total);
  }

  std::ostringstream blob;
  estimator_.save(blob);
  binio::write_bytes(out, blob.str());

  if (bid_book_enabled_) {
    std::vector<auction::WorkerId> withdrawn(withdrawn_.begin(),
                                             withdrawn_.end());
    std::sort(withdrawn.begin(), withdrawn.end());
    binio::write_u64(out, withdrawn.size());
    for (const auction::WorkerId id : withdrawn) binio::write_i32(out, id);
    bid_book_.save(out);
  }

  if (!out) throw std::runtime_error("platform snapshot: write failure");
}

void Platform::load(std::istream& in) {
  char magic[8];
  if (!in.read(magic, sizeof magic) ||
      !std::equal(magic, magic + sizeof magic, kMagic)) {
    throw std::runtime_error("platform snapshot: bad magic");
  }
  const std::uint32_t version = binio::read_u32(in, "snapshot version");
  if (version != kVersion && version != kVersionBidBook) {
    throw std::runtime_error("platform snapshot: unsupported version " +
                             std::to_string(version));
  }

  const std::uint64_t master_seed = binio::read_u64(in, "master seed");
  const std::int32_t run = binio::read_i32(in, "run index");
  if (run < 0) throw std::runtime_error("platform snapshot: negative run");

  util::Rng::State rng;
  for (int i = 0; i < 4; ++i) {
    rng.words[i] = binio::read_u64(in, "rng words");
  }
  rng.cached_normal = binio::read_f64(in, "rng cached normal");
  rng.cached_normal_valid = binio::read_u8(in, "rng cached flag") != 0;

  FaultPlan plan;
  plan.no_show_rate = binio::read_f64(in, "fault no-show rate");
  plan.score_drop_rate = binio::read_f64(in, "fault drop rate");
  plan.score_corrupt_rate = binio::read_f64(in, "fault corrupt rate");
  plan.churn_rate = binio::read_f64(in, "fault churn rate");
  plan.churn_min_absence = binio::read_i32(in, "fault churn min");
  plan.churn_max_absence = binio::read_i32(in, "fault churn max");
  plan.salt = binio::read_u64(in, "fault salt");
  plan.validate();

  const std::uint64_t worker_count = binio::read_u64(in, "worker count");
  if (worker_count > (1ull << 32)) {
    throw std::runtime_error("platform snapshot: implausible worker count");
  }
  std::vector<SimWorker> workers;
  workers.reserve(static_cast<std::size_t>(worker_count));
  for (std::uint64_t k = 0; k < worker_count; ++k) {
    const auction::WorkerId id = binio::read_i32(in, "worker id");
    auction::Bid bid;
    bid.cost = binio::read_f64(in, "worker cost");
    bid.frequency = binio::read_i32(in, "worker frequency");
    const std::uint64_t len = binio::read_u64(in, "trajectory length");
    if (len > (1ull << 32)) {
      throw std::runtime_error("platform snapshot: implausible trajectory");
    }
    std::vector<double> latent(static_cast<std::size_t>(len));
    for (double& q : latent) q = binio::read_f64(in, "latent quality");
    workers.emplace_back(id, bid, std::move(latent));
  }

  const std::uint64_t policy_count = binio::read_u64(in, "policy count");
  std::unordered_map<auction::WorkerId, BidPolicy> policies;
  for (std::uint64_t k = 0; k < policy_count; ++k) {
    const auction::WorkerId id = binio::read_i32(in, "policy id");
    BidPolicy p;
    p.cheat_probability = binio::read_f64(in, "policy cheat probability");
    const std::uint8_t direction = binio::read_u8(in, "policy direction");
    if (direction > 2) {
      throw std::runtime_error("platform snapshot: bad misreport direction");
    }
    p.direction = static_cast<MisreportDirection>(direction);
    p.cheat_cost = binio::read_u8(in, "policy cheat cost") != 0;
    p.cheat_frequency = binio::read_u8(in, "policy cheat frequency") != 0;
    p.cost_magnitude = binio::read_f64(in, "policy cost magnitude");
    p.frequency_magnitude = binio::read_i32(in, "policy frequency magnitude");
    policies[id] = p;
  }

  const std::uint64_t utility_count = binio::read_u64(in, "utility count");
  std::unordered_map<auction::WorkerId, double> utilities;
  for (std::uint64_t k = 0; k < utility_count; ++k) {
    const auction::WorkerId id = binio::read_i32(in, "utility id");
    utilities[id] = binio::read_f64(in, "utility total");
  }

  const std::string blob = binio::read_bytes(in, "estimator blob");

  std::unordered_set<auction::WorkerId> withdrawn;
  auction::BidBook book;
  if (version >= kVersionBidBook) {
    const std::uint64_t withdrawn_count =
        binio::read_u64(in, "withdrawn count");
    if (withdrawn_count > worker_count) {
      throw std::runtime_error("platform snapshot: implausible withdrawals");
    }
    for (std::uint64_t k = 0; k < withdrawn_count; ++k) {
      withdrawn.insert(binio::read_i32(in, "withdrawn id"));
    }
    book.load(in);
  }

  // Everything parsed: commit wholesale. The estimator's own load replaces
  // its state (including the registered-worker set), so workers registered
  // at construction do not linger as stale entries.
  std::istringstream blob_stream(blob);
  estimator_.load(blob_stream);
  master_seed_ = master_seed;
  run_ = run;
  rng_.restore(rng);
  fault_plan_ = plan;
  workers_ = std::move(workers);
  soa_.rebuild(workers_);
  policies_ = std::move(policies);
  total_utility_ = std::move(utilities);
  last_result_ = auction::AllocationResult{};
  // v2 snapshots only come from book-enabled platforms; a v1 blob loaded
  // into an enabled platform starts with an empty book, repopulated by the
  // next step()'s diff (the ladder is canonical, so outcomes are unchanged).
  withdrawn_ = std::move(withdrawn);
  bid_book_ = std::move(book);
  if (version >= kVersionBidBook) bid_book_enabled_ = true;
}

void save_checkpoint(const Platform& platform, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot open " + tmp);
    }
    platform.save(out);
    out.flush();
    if (!out) throw std::runtime_error("checkpoint: write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint: rename failed: " + path);
  }
}

void load_checkpoint(Platform& platform, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  platform.load(in);
}

}  // namespace melody::sim
