// The multi-run crowdsourcing platform simulator implementing the system
// workflow of Fig. 2: auction -> task completion -> scoring -> quality
// update, repeated over runs.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "auction/mechanism.h"
#include "estimators/estimator.h"
#include "sim/fault.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "sim/worker_model.h"
#include "sim/worker_soa.h"
#include "util/rng.h"

namespace melody::sim {

/// Orchestrates one population + one mechanism + one quality estimator over
/// many runs, generating tasks and scores from ground truth and feeding the
/// estimator only what a real platform would see.
///
/// Determinism contract: bid perturbations and task sampling draw from one
/// sequential generator seeded with `seed`, while each worker's per-run
/// scores draw from the counter-based stream
/// Rng(util::derive_stream(seed, worker_id, run)). Score generation and the
/// estimator update therefore shard across util::shared_pool() with output
/// bit-identical to the serial path for any thread count.
class Platform {
 public:
  /// The mechanism and estimator are borrowed and must outlive the
  /// platform. Workers are copied in; all randomness derives from `seed`.
  Platform(const LongTermScenario& scenario, auction::Mechanism& mechanism,
           estimators::QualityEstimator& estimator,
           std::vector<SimWorker> workers, std::uint64_t seed);

  /// Override the bidding policy of a single worker (Figs. 6-7 strategic
  /// experiments). All other workers bid truthfully.
  void set_policy(auction::WorkerId id, BidPolicy policy);

  /// Add a newcomer mid-simulation (registered with the estimator).
  void add_worker(SimWorker worker);

  /// Opt in to the persistent price-ladder bid book: every step() diffs the
  /// collected bids against the book, applies the deltas (O(log N) per
  /// changed bid), and hands the mechanism a context carrying the book so
  /// incremental mechanisms rank from the ladder instead of re-sorting.
  /// Allocation stays bit-identical to the rebuild path; snapshots of a
  /// book-enabled platform use format v2 (v1 stays byte-identical for
  /// platforms that never opt in). Irreversible for this platform.
  void enable_bid_book() noexcept { bid_book_enabled_ = true; }
  bool bid_book_enabled() const noexcept { return bid_book_enabled_; }
  const auction::BidBook& bid_book() const noexcept { return bid_book_; }

  /// Re-bid: replace a worker's true (cost, frequency) between runs and
  /// clear any withdrawal. Returns false for an unknown id.
  bool update_bid(auction::WorkerId id, const auction::Bid& bid);

  /// Withdraw (or reinstate) a worker: while withdrawn he submits no bids —
  /// skipped in bid collection like an absent worker, and dropped from the
  /// bid book by the next diff. Part of the deterministic platform state
  /// (snapshotted in v2). Returns false for an unknown id.
  bool set_withdrawn(auction::WorkerId id, bool withdrawn);
  bool is_withdrawn(auction::WorkerId id) const {
    return withdrawn_.contains(id);
  }

  /// Install a fault plan. Faults are generated from dedicated
  /// counter-based streams (see sim/fault.h), so a faulted simulation
  /// keeps the full determinism contract: bit-identical at any thread
  /// count and across checkpoint/resume. Replaces any previous plan;
  /// install before the affected runs (typically before the first step).
  void set_fault_plan(FaultPlan plan);
  const FaultPlan& fault_plan() const noexcept { return fault_plan_; }

  /// Execute one run: auction, scoring, estimator update. Returns metrics.
  /// Stage timings land in obs::registry() under "platform/*" and one
  /// "platform/run" event per run goes to obs::sink() (both no-ops unless
  /// observability is enabled/installed; neither affects the outputs).
  RunRecord step();

  /// Invoked at the end of every step() with the run's record, after all
  /// stages and obs emission — the shard-local aggregation hook sharded
  /// services use to feed cross-shard run totals without polling. The hook
  /// runs on the stepping thread, must be cheap, and must not call back
  /// into this platform. Pass an empty function to clear. Not part of a
  /// snapshot.
  void set_run_hook(std::function<void(const RunRecord&)> hook) {
    run_hook_ = std::move(hook);
  }

  /// Execute all remaining runs of the scenario.
  std::vector<RunRecord> run_all();

  /// 1-based index of the next run to execute.
  int current_run() const noexcept { return run_ + 1; }

  /// True once every scheduled run of the scenario has executed. step() may
  /// legally be called past this point (trajectories hold their last value,
  /// tasks keep being sampled) — long-running services outlive the scripted
  /// horizon — but run_all() and the batch tools stop here.
  bool finished() const noexcept { return run_ >= scenario_.runs; }

  /// The scenario this platform was constructed with (incremental drivers
  /// need the run horizon and per-run budget without carrying a copy).
  const LongTermScenario& scenario() const noexcept { return scenario_; }

  /// The master seed all per-(worker, run) streams derive from. Exposed so
  /// online drivers can mint deterministic sub-streams (e.g. newcomer
  /// trajectories) in the same key space as the simulation itself.
  std::uint64_t master_seed() const noexcept { return master_seed_; }

  /// The worker with the given id, or nullptr (linear scan — registration
  /// and queries, not hot paths).
  const SimWorker* find_worker(auction::WorkerId id) const noexcept;

  /// Cumulative true utility a worker has accrued so far (Definition 1).
  /// An id the platform has never seen — unregistered, or registered but
  /// never stepped — returns 0.0: a worker who never participated earned
  /// nothing. This deliberately does NOT throw (unlike
  /// QualityEstimator::estimate, where an unknown id is a caller bug): the
  /// query is a read-only report over whatever history exists, and the
  /// const map is never default-inserted into.
  double worker_total_utility(auction::WorkerId id) const;

  /// The allocation produced by the most recent step() (empty before).
  const auction::AllocationResult& last_result() const noexcept {
    return last_result_;
  }

  const std::vector<SimWorker>& workers() const noexcept { return workers_; }

  /// Persist the complete platform state as a versioned binary snapshot
  /// (magic "MLDYCKPT" + format version): run index, workers (including
  /// their latent trajectories), bid policies, cumulative utilities, the
  /// sequential RNG position, the fault plan, and the estimator state via
  /// QualityEstimator::save. Resuming from a snapshot is bit-identical to
  /// never having stopped, at any thread count. The scenario and the
  /// mechanism are NOT saved: construct the new platform with the same
  /// scenario and a stateless mechanism (MelodyAuction is; RandomAuction's
  /// internal RNG position is not restored) plus a same-config estimator
  /// before load(). The last_result() of the interrupted step is not part
  /// of a snapshot — it is re-established by the next step().
  /// Both throw std::runtime_error on I/O failure or malformed input.
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  LongTermScenario scenario_;
  auction::Mechanism& mechanism_;
  estimators::QualityEstimator& estimator_;
  std::vector<SimWorker> workers_;
  /// Derived SoA view over workers_ for the per-run hot loops; rebuilt on
  /// every population change (construction, add_worker, load). Not part of
  /// the snapshot — it is a pure function of workers_.
  WorkerStateSoA soa_;
  std::unordered_map<auction::WorkerId, BidPolicy> policies_;
  std::unordered_map<auction::WorkerId, double> total_utility_;
  auction::AllocationResult last_result_;
  util::Rng rng_;
  std::uint64_t master_seed_ = 0;
  int run_ = 0;
  FaultPlan fault_plan_;
  /// Persistent price-ladder bid book (see enable_bid_book); empty and
  /// inert unless enabled. delta_scratch_ is the per-step diff reused
  /// across runs.
  bool bid_book_enabled_ = false;
  auction::BidBook bid_book_;
  std::unordered_set<auction::WorkerId> withdrawn_;
  std::vector<auction::BidDelta> delta_scratch_;
  std::function<void(const RunRecord&)> run_hook_;
  // Per-step scratch reused across runs (step() is single-entry, so plain
  // members are safe): per-slot assignment counts and true utilities.
  std::vector<int> assigned_scratch_;
  std::vector<double> utility_scratch_;
};

/// Crash-safe checkpoint files: save() writes to `path + ".tmp"` and
/// renames over `path`, so a crash mid-write never destroys the previous
/// checkpoint. load_checkpoint restores a platform from such a file.
/// Both throw std::runtime_error on I/O failure.
void save_checkpoint(const Platform& platform, const std::string& path);
void load_checkpoint(Platform& platform, const std::string& path);

}  // namespace melody::sim
