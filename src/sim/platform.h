// The multi-run crowdsourcing platform simulator implementing the system
// workflow of Fig. 2: auction -> task completion -> scoring -> quality
// update, repeated over runs.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "auction/mechanism.h"
#include "estimators/estimator.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "sim/worker_model.h"
#include "util/rng.h"

namespace melody::sim {

/// Orchestrates one population + one mechanism + one quality estimator over
/// many runs, generating tasks and scores from ground truth and feeding the
/// estimator only what a real platform would see.
///
/// Determinism contract: bid perturbations and task sampling draw from one
/// sequential generator seeded with `seed`, while each worker's per-run
/// scores draw from the counter-based stream
/// Rng(util::derive_stream(seed, worker_id, run)). Score generation and the
/// estimator update therefore shard across util::shared_pool() with output
/// bit-identical to the serial path for any thread count.
class Platform {
 public:
  /// The mechanism and estimator are borrowed and must outlive the
  /// platform. Workers are copied in; all randomness derives from `seed`.
  Platform(const LongTermScenario& scenario, auction::Mechanism& mechanism,
           estimators::QualityEstimator& estimator,
           std::vector<SimWorker> workers, std::uint64_t seed);

  /// Override the bidding policy of a single worker (Figs. 6-7 strategic
  /// experiments). All other workers bid truthfully.
  void set_policy(auction::WorkerId id, BidPolicy policy);

  /// Add a newcomer mid-simulation (registered with the estimator).
  void add_worker(SimWorker worker);

  /// Execute one run: auction, scoring, estimator update. Returns metrics.
  /// Stage timings land in obs::registry() under "platform/*" and one
  /// "platform/run" event per run goes to obs::sink() (both no-ops unless
  /// observability is enabled/installed; neither affects the outputs).
  RunRecord step();

  /// Execute all remaining runs of the scenario.
  std::vector<RunRecord> run_all();

  /// 1-based index of the next run to execute.
  int current_run() const noexcept { return run_ + 1; }

  /// Cumulative true utility a worker has accrued so far (Definition 1).
  /// An id the platform has never seen — unregistered, or registered but
  /// never stepped — returns 0.0: a worker who never participated earned
  /// nothing. This deliberately does NOT throw (unlike
  /// QualityEstimator::estimate, where an unknown id is a caller bug): the
  /// query is a read-only report over whatever history exists, and the
  /// const map is never default-inserted into.
  double worker_total_utility(auction::WorkerId id) const;

  /// The allocation produced by the most recent step() (empty before).
  const auction::AllocationResult& last_result() const noexcept {
    return last_result_;
  }

  const std::vector<SimWorker>& workers() const noexcept { return workers_; }

 private:
  LongTermScenario scenario_;
  auction::Mechanism& mechanism_;
  estimators::QualityEstimator& estimator_;
  std::vector<SimWorker> workers_;
  std::unordered_map<auction::WorkerId, BidPolicy> policies_;
  std::unordered_map<auction::WorkerId, double> total_utility_;
  auction::AllocationResult last_result_;
  util::Rng rng_;
  std::uint64_t master_seed_ = 0;
  int run_ = 0;
};

}  // namespace melody::sim
