#include "sim/scenario.h"

namespace melody::sim {

auction::AuctionConfig SraScenario::auction_config() const {
  auction::AuctionConfig config;
  config.budget = budget;
  config.theta_min = quality.lo;
  config.theta_max = quality.hi;
  config.cost_min = cost.lo;
  config.cost_max = cost.hi;
  return config;
}

std::vector<auction::WorkerProfile> SraScenario::sample_workers(
    util::Rng& rng) const {
  std::vector<auction::WorkerProfile> workers;
  workers.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    auction::WorkerProfile w;
    w.id = static_cast<auction::WorkerId>(i);
    w.estimated_quality = rng.uniform(quality.lo, quality.hi);
    w.bid.cost = rng.uniform(cost.lo, cost.hi);
    w.bid.frequency =
        static_cast<int>(rng.uniform_int(frequency.lo, frequency.hi));
    workers.push_back(w);
  }
  return workers;
}

std::vector<auction::Task> SraScenario::sample_tasks(util::Rng& rng) const {
  std::vector<auction::Task> tasks;
  tasks.reserve(static_cast<std::size_t>(num_tasks));
  for (int j = 0; j < num_tasks; ++j) {
    tasks.push_back({static_cast<auction::TaskId>(j),
                     rng.uniform(threshold.lo, threshold.hi)});
  }
  return tasks;
}

SraScenario table3_setting_i(int num_workers, double budget) {
  SraScenario s;
  s.num_workers = num_workers;
  s.num_tasks = 500;
  s.budget = budget;
  return s;
}

SraScenario table3_setting_ii(double budget, int num_workers) {
  SraScenario s;
  s.num_workers = num_workers;
  s.num_tasks = 500;
  s.budget = budget;
  return s;
}

SraScenario table3_setting_iii(int num_tasks, int num_workers) {
  SraScenario s;
  s.num_workers = num_workers;
  s.num_tasks = num_tasks;
  s.budget = 2000.0;
  return s;
}

auction::AuctionConfig LongTermScenario::auction_config() const {
  auction::AuctionConfig config;
  config.budget = budget;
  // Theta_M is implied by the maximum achievable score; Theta_m by the
  // minimum. Estimates that drift outside the score range are disqualified,
  // exactly as Algorithm 1 line 1 intends.
  config.theta_min = score_model.min_score;
  config.theta_max = score_model.max_score;
  config.cost_min = cost.lo;
  config.cost_max = cost.hi;
  return config;
}

WorkerPopulationConfig LongTermScenario::population_config() const {
  WorkerPopulationConfig config;
  config.count = num_workers;
  config.cost_min = cost.lo;
  config.cost_max = cost.hi;
  config.frequency_min = frequency.lo;
  config.frequency_max = frequency.hi;
  config.mix = mix;
  config.horizon = runs;
  return config;
}

std::vector<auction::Task> LongTermScenario::sample_tasks(util::Rng& rng) const {
  std::vector<auction::Task> tasks;
  tasks.reserve(static_cast<std::size_t>(num_tasks));
  for (int j = 0; j < num_tasks; ++j) {
    tasks.push_back({static_cast<auction::TaskId>(j),
                     rng.uniform(threshold.lo, threshold.hi)});
  }
  return tasks;
}

}  // namespace melody::sim
