// Latent-quality trajectory generators for the four long-term patterns of
// Fig. 1 (rising, declining, fluctuating, stable), plus the paper's
// stability classifier (footnote 4) rescaled to the score range.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace melody::sim {

enum class TrajectoryKind { kRising, kDeclining, kFluctuating, kStable };

std::string to_string(TrajectoryKind kind);

/// Shape parameters for one worker's latent quality curve on the score
/// scale (the paper's Table 4 uses scores in [1, 10]).
struct TrajectoryConfig {
  TrajectoryKind kind = TrajectoryKind::kStable;
  double start_level = 5.5;   // quality at run 0
  double swing = 3.0;         // total rise/decline, or fluctuation amplitude
  double period = 200.0;      // fluctuation period in runs
  double phase = 0.0;         // fluctuation phase offset in radians
  double noise_stddev = 0.15; // per-run random-walk jitter on the latent state
  double min_quality = 1.0;   // clamp range (mirrors the score range)
  double max_quality = 10.0;
  int horizon = 1000;         // runs over which the rise/decline completes
};

/// Generate `runs` latent quality values q^1..q^runs. The deterministic
/// shape is perturbed by an integrated (random-walk) noise term so curves
/// resemble Fig. 1 rather than a noisy parametric line.
std::vector<double> generate_trajectory(const TrajectoryConfig& config, int runs,
                                        util::Rng& rng);

/// Stability thresholds (paper footnote 4: slope within [-0.05, 0.05] and
/// variance below 100 on a 0-100 quality scale over ~100-run curves).
/// Rescaled to our [1, 10] score scale (x10) and the 1000-run simulation
/// horizon: a worker who drifts by >= 2 quality points across the horizon
/// (slope 0.002/run) is not stable. With these defaults the sampled
/// population classifies to roughly the paper's 8.5% stable fraction.
struct StabilityCriteria {
  double max_abs_slope = 0.002;
  double max_variance = 1.0;
};

/// True iff the quality curve is "stable" per the paper's definition.
bool is_stable(std::span<const double> quality, const StabilityCriteria& c = {});

/// Population mix used by the long-term experiments. The paper reports
/// 8.5% stable workers; the remainder is split across the dynamic patterns.
struct PopulationMix {
  double rising = 0.305;
  double declining = 0.305;
  double fluctuating = 0.305;
  double stable = 0.085;
};

/// Sample a trajectory kind according to the mix.
TrajectoryKind sample_kind(const PopulationMix& mix, util::Rng& rng);

/// Sample a full TrajectoryConfig of the given kind with randomized shape
/// parameters (start level, swing, period, phase) appropriate for the kind.
TrajectoryConfig sample_config(TrajectoryKind kind, int horizon, util::Rng& rng);

}  // namespace melody::sim
