#include "sim/score_gen.h"

#include <algorithm>

namespace melody::sim {

double generate_score(const ScoreModel& model, double latent_quality,
                      util::Rng& rng) {
  return std::clamp(rng.normal(latent_quality, model.noise_stddev),
                    model.min_score, model.max_score);
}

lds::ScoreSet generate_scores(const ScoreModel& model, double latent_quality,
                              int task_count, util::Rng& rng) {
  lds::ScoreSet scores;
  for (int t = 0; t < task_count; ++t) {
    scores.add(generate_score(model, latent_quality, rng));
  }
  return scores;
}

}  // namespace melody::sim
