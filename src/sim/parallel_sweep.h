// Concurrent execution of many independent Platform replicas — the
// (seeds x scenarios x mechanisms x estimators) grids behind Fig. 9, the
// ablations, and any production capacity sweep.
//
// Each job owns its mechanism/estimator instances (built from the job's
// factories inside the job's task, so nothing is shared across replicas)
// and its own RNG seeds; replicas shard across util::shared_pool() and the
// per-run metrics land in job order. Merged statistics are reduced in job
// order after the barrier. Both are therefore bit-identical to running the
// jobs serially, for any thread count — pinned by
// tests/test_parallel_determinism.cc.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "auction/mechanism.h"
#include "estimators/estimator.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "util/stats.h"

namespace melody::sim {

/// Factories run inside the replica's task and must be callable from any
/// thread (they should only construct fresh objects).
using MechanismFactory = std::function<std::unique_ptr<auction::Mechanism>()>;
using EstimatorFactory =
    std::function<std::unique_ptr<estimators::QualityEstimator>()>;

/// One replica: a scenario plus the seeds and component factories.
/// The population is sampled with Rng(population_seed); the platform runs
/// with platform_seed (per-(worker, run) score streams derive from it).
struct SweepJob {
  std::string label;
  LongTermScenario scenario;
  std::uint64_t population_seed = 0;
  std::uint64_t platform_seed = 0;
  MechanismFactory make_mechanism;
  EstimatorFactory make_estimator;
};

/// Welford accumulators over every run of a replica (or of a whole sweep).
struct SweepAccumulators {
  util::RunningStats estimated_utility;
  util::RunningStats true_utility;
  util::RunningStats estimation_error;
  util::RunningStats total_payment;
  util::RunningStats assignments;

  void add(const RunRecord& record);
  void merge(const SweepAccumulators& other);
};

struct SweepReplica {
  std::string label;
  std::vector<RunRecord> records;
  SweepAccumulators stats;
};

struct SweepResult {
  std::vector<SweepReplica> replicas;  // in job order
  SweepAccumulators merged;            // job-order reduction over replicas
};

class ParallelSweep {
 public:
  void add(SweepJob job) { jobs_.push_back(std::move(job)); }

  /// Convenience: one job per master seed with shared scenario/factories,
  /// following the melody_sim convention (population = seed,
  /// platform = seed + 1). Labels are "<prefix>/s<seed>".
  void add_seed_grid(const std::string& label_prefix,
                     const LongTermScenario& scenario,
                     std::span<const std::uint64_t> seeds,
                     MechanismFactory make_mechanism,
                     EstimatorFactory make_estimator);

  std::size_t job_count() const noexcept { return jobs_.size(); }

  /// Run every job, sharded across util::shared_pool(). Throws the first
  /// replica exception (if any) after all replicas finished or aborted.
  SweepResult run() const;

 private:
  std::vector<SweepJob> jobs_;
};

}  // namespace melody::sim
