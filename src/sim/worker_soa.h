// Structure-of-arrays view over the platform's worker population for the
// per-run hot loops: contiguous id/cost/frequency arrays plus per-worker
// latent-trajectory views, with an id -> slot index replacing the
// per-step `by_id` hash map the platform used to rebuild every run.
//
// This is a *facade*: SimWorker remains the owner of all ground-truth
// state (and the checkpoint format still serializes SimWorkers in platform
// order, unchanged). The SoA arrays are derived views, rebuilt whenever
// the population changes (construction, add_worker, snapshot load) —
// slot i always describes workers[i]. The trajectory views stay valid
// across vector reallocation of the owning SimWorkers because moving a
// SimWorker moves its latent vector's heap buffer, not the samples.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "auction/types.h"
#include "sim/worker_model.h"

namespace melody::sim {

class WorkerStateSoA {
 public:
  /// Derive the arrays from `workers` (slot i <- workers[i]). Called on
  /// every population change; O(N).
  void rebuild(std::span<const SimWorker> workers);

  std::size_t size() const noexcept { return ids_.size(); }
  const std::vector<auction::WorkerId>& ids() const noexcept { return ids_; }
  const std::vector<double>& costs() const noexcept { return cost_; }
  const std::vector<int>& frequencies() const noexcept { return frequency_; }

  /// Dense slot of a worker id. Throws std::out_of_range for unknown ids
  /// (same contract the platform's old by_id map lookup had).
  std::size_t slot_of(auction::WorkerId id) const { return index_.at(id); }

  bool contains(auction::WorkerId id) const { return index_.contains(id); }

  /// Targeted bid update mirroring SimWorker::set_true_bid — keeps the
  /// derived arrays in sync without an O(N) rebuild.
  void set_bid(std::size_t slot, const auction::Bid& bid) noexcept {
    cost_[slot] = bid.cost;
    frequency_[slot] = bid.frequency;
  }

  /// Latent quality q^r for 1-based run r — identical semantics to
  /// SimWorker::latent_quality (empty trajectory reads 0, the last value
  /// is held past the horizon).
  double latent_quality(std::size_t slot, int run) const noexcept {
    const int len = latent_len_[slot];
    if (len == 0) return 0.0;
    int index = run - 1;
    if (index < 0) index = 0;
    if (index >= len) index = len - 1;
    return latent_data_[slot][index];
  }

  /// Per-worker true utilities for one auction outcome, written into
  /// `out[slot]` (resized to size()). Single pass over the assignments in
  /// result order with the same per-worker frequency cap and accumulation
  /// order as SimWorker::utility — each worker's sum is the bit-identical
  /// double — replacing the platform's old O(workers x assignments)
  /// per-worker scans with O(workers + assignments).
  void utilities(const auction::AllocationResult& result,
                 std::vector<double>& out) const;

 private:
  std::vector<auction::WorkerId> ids_;
  std::vector<double> cost_;       // true cost c_i
  std::vector<int> frequency_;     // true frequency n_i
  std::vector<const double*> latent_data_;
  std::vector<int> latent_len_;
  std::unordered_map<auction::WorkerId, std::size_t> index_;
  mutable std::vector<int> remaining_scratch_;  // utilities() frequency caps
};

}  // namespace melody::sim
