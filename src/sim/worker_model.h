// Ground-truth worker models for the simulator: true (private) bids, latent
// quality trajectories, and strategic bidding policies used by the
// truthfulness experiments (Figs. 6-7).
#pragma once

#include <span>
#include <vector>

#include "auction/types.h"
#include "sim/trajectory.h"
#include "util/rng.h"

namespace melody::sim {

/// How a strategic worker misreports relative to his true value.
enum class MisreportDirection { kHigher, kLower, kRandom };

/// A per-run bidding strategy. With probability cheat_probability the
/// worker misreports the chosen field(s) by up to `magnitude` (relative for
/// cost, absolute task count for frequency); otherwise he bids truthfully.
struct BidPolicy {
  double cheat_probability = 0.0;
  MisreportDirection direction = MisreportDirection::kRandom;
  bool cheat_cost = true;
  bool cheat_frequency = false;
  /// Relative cost perturbation bound (e.g. 0.5 -> up to +/-50%).
  double cost_magnitude = 0.5;
  /// Absolute frequency perturbation bound in tasks.
  int frequency_magnitude = 2;

  static BidPolicy truthful() { return {}; }
};

/// One simulated worker: ground truth the platform never sees.
class SimWorker {
 public:
  SimWorker(auction::WorkerId id, auction::Bid true_bid,
            std::vector<double> latent_quality)
      : id_(id), true_bid_(true_bid), latent_(std::move(latent_quality)) {}

  auction::WorkerId id() const noexcept { return id_; }
  const auction::Bid& true_bid() const noexcept { return true_bid_; }

  /// Re-bid: replace the worker's true (cost, frequency). Online platforms
  /// accept bid updates between runs (svc `update_bid`); the new bid is
  /// what truthful bidding and utility accounting use from now on.
  void set_true_bid(const auction::Bid& bid) noexcept { true_bid_ = bid; }

  /// Latent quality q^r for 1-based run r; the last value is held if the
  /// simulation outlives the generated trajectory.
  double latent_quality(int run) const;

  int horizon() const noexcept { return static_cast<int>(latent_.size()); }

  /// Read-only view of the full latent trajectory (WorkerStateSoA derives
  /// its per-slot views from this; sample r of the view is q^{r+1}).
  std::span<const double> latent_trajectory() const noexcept {
    return latent_;
  }

  /// The bid submitted in a run under the given policy.
  auction::Bid submitted_bid(const BidPolicy& policy, util::Rng& rng) const;

  /// Worker's true utility for an auction outcome: payments received minus
  /// true cost per assigned task (Definition 1).
  double utility(const auction::AllocationResult& result) const;

 private:
  auction::WorkerId id_;
  auction::Bid true_bid_;
  std::vector<double> latent_;
};

/// Parameter ranges for sampling a ground-truth population.
struct WorkerPopulationConfig {
  int count = 300;
  double cost_min = 1.0;
  double cost_max = 2.0;
  int frequency_min = 1;
  int frequency_max = 5;
  PopulationMix mix;
  int horizon = 1000;  // trajectory length in runs
};

/// Sample a full population with per-worker trajectories.
std::vector<SimWorker> sample_population(const WorkerPopulationConfig& config,
                                         util::Rng& rng);

}  // namespace melody::sim
