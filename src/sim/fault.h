// Deterministic fault injection for the long-term platform simulation: the
// messy realities of worker participation — no-shows, dropped or corrupted
// scores, mid-history churn — expressed as a declarative plan and generated
// from counter-based RNG streams, so a faulted simulation is exactly as
// reproducible as a clean one (bit-identical at any thread count, and
// across checkpoint/resume).
//
// Stream derivation: all fault decisions are pure functions of
// (master_seed, plan.salt, worker, run), never of thread scheduling or of
// the sequential platform RNG:
//   fault_master          = derive_stream(master_seed, plan.salt)
//   churn window (worker) = Rng(derive_stream(fault_master, worker, 0))
//   absence  (worker,run) = Rng(derive_stream(fault_master, worker, 2r))
//   scores   (worker,run) = Rng(derive_stream(fault_master, worker, 2r+1))
// Runs are 1-based, so substream 0 is reserved for the per-worker churn
// window; absence and score faults get disjoint odd/even substreams so the
// two stages never replay each other's draws.
#pragma once

#include <cstdint>
#include <string>

#include "auction/types.h"
#include "lds/gaussian.h"
#include "sim/score_gen.h"
#include "util/rng.h"

namespace melody::sim {

/// Declarative description of the failure modes injected into a
/// simulation. The default-constructed plan is inactive (no faults).
struct FaultPlan {
  /// Per (worker, run) probability that the worker skips the run entirely:
  /// no bid, no assignments, no scores (the estimator sees an empty set).
  double no_show_rate = 0.0;
  /// Per-score probability that a score is lost before the platform sees
  /// it (scored-but-dropped observations).
  double score_drop_rate = 0.0;
  /// Per surviving score, probability that it is replaced by an outlier
  /// pinned to the score range's extremes.
  double score_corrupt_rate = 0.0;
  /// Per-worker probability of one mid-history departure: the worker is
  /// absent for a contiguous window of runs, then returns.
  double churn_rate = 0.0;
  /// Bounds on the churn absence window length, in runs.
  int churn_min_absence = 10;
  int churn_max_absence = 100;
  /// Salt separating the fault streams from the score streams (and one
  /// fault experiment from another under the same master seed).
  std::uint64_t salt = 0x4641554c54ULL;  // "FAULT"

  /// True iff any failure mode has a non-zero rate.
  bool active() const noexcept;

  /// Throws std::invalid_argument if a rate is outside [0, 1] or the churn
  /// window bounds are inverted or non-positive.
  void validate() const;

  /// Parse a comma-separated spec, e.g.
  ///   "no-show=0.05,drop=0.1,corrupt=0.02,churn=0.1,churn-min=5,churn-max=50"
  /// Keys: no-show, drop, corrupt, churn, churn-min, churn-max, salt. An
  /// empty spec yields the inactive plan. Throws std::invalid_argument on
  /// unknown keys, malformed values, or out-of-range rates.
  static FaultPlan parse(const std::string& spec);

  /// Canonical spec string (parse(describe()) round-trips the plan).
  std::string describe() const;

  bool operator==(const FaultPlan&) const = default;
};

/// Why a worker is missing from a run (kPresent when he is not).
enum class Absence { kPresent, kNoShow, kChurned };

/// Deterministic absence decision for (worker, run). `horizon` is the
/// scenario's total run count and bounds where a churn window may start.
/// Churn is checked first: a churned-out worker is reported kChurned even
/// if his no-show coin also fired.
Absence absence_for(const FaultPlan& plan, std::uint64_t master_seed,
                    auction::WorkerId worker, int run, int horizon);

/// Tallies of the per-score faults applied to one (worker, run).
struct ScoreFaultCounts {
  int dropped = 0;
  int corrupted = 0;
};

/// Generate the score set for a worker who completed `task_count` tasks,
/// layering the plan's per-score faults over the clean emission model.
/// Scores are drawn from `score_stream` exactly as the un-faulted path
/// does; drop/corrupt decisions (and outlier values) come from the
/// separate per-(worker, run) fault stream, so enabling faults never
/// perturbs which base scores are drawn.
lds::ScoreSet generate_faulted_scores(const FaultPlan& plan,
                                      const ScoreModel& model,
                                      double latent_quality, int task_count,
                                      util::Rng& score_stream,
                                      std::uint64_t master_seed,
                                      auction::WorkerId worker, int run,
                                      ScoreFaultCounts& counts);

}  // namespace melody::sim
