#include "sim/labeling.h"

#include <algorithm>
#include <stdexcept>

namespace melody::sim {

double label_accuracy(const LabelingModel& model, double latent_quality,
                      int classes) {
  if (classes < 2) throw std::invalid_argument("label_accuracy: classes >= 2");
  const double chance = 1.0 / classes;
  const double span = model.quality_ceiling - model.quality_floor;
  const double t = span > 0.0
                       ? std::clamp((latent_quality - model.quality_floor) /
                                        span,
                                    0.0, 1.0)
                       : 0.0;
  return chance + t * (model.max_accuracy - chance);
}

Label sample_label(const LabelingModel& model, const LabelingTask& task,
                   auction::WorkerId worker, double latent_quality,
                   util::Rng& rng) {
  Label label;
  label.worker = worker;
  label.task = task.id;
  const double accuracy = label_accuracy(model, latent_quality, task.classes);
  if (rng.bernoulli(accuracy)) {
    label.value = task.truth;
  } else {
    // Uniform over the wrong classes.
    const auto offset =
        static_cast<int>(rng.uniform_int(1, task.classes - 1));
    label.value = (task.truth + offset) % task.classes;
  }
  return label;
}

int aggregate_labels(const std::vector<Label>& labels,
                     const std::vector<double>& weights) {
  if (labels.empty()) return -1;
  if (weights.size() != labels.size()) {
    throw std::invalid_argument("aggregate_labels: weights size mismatch");
  }
  bool use_weights = false;
  for (double w : weights) {
    if (w > 0.0) use_weights = true;
    if (w < 0.0) throw std::invalid_argument("aggregate_labels: negative weight");
  }
  int max_class = 0;
  for (const Label& label : labels) max_class = std::max(max_class, label.value);
  std::vector<double> votes(static_cast<std::size_t>(max_class) + 1, 0.0);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    votes[static_cast<std::size_t>(labels[i].value)] +=
        use_weights ? weights[i] : 1.0;
  }
  int best = 0;
  for (int c = 1; c <= max_class; ++c) {
    if (votes[static_cast<std::size_t>(c)] >
        votes[static_cast<std::size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

double agreement_score(const LabelingModel& model, const Label& label,
                       int aggregated_answer) {
  return label.value == aggregated_answer ? model.max_score : model.min_score;
}

TaskOutcome run_labeling_task(const LabelingModel& model,
                              const LabelingTask& task,
                              const std::vector<auction::WorkerId>& workers,
                              const std::vector<double>& latent_qualities,
                              const std::vector<double>& estimate_weights,
                              util::Rng& rng) {
  if (workers.size() != latent_qualities.size() ||
      workers.size() != estimate_weights.size()) {
    throw std::invalid_argument("run_labeling_task: size mismatch");
  }
  TaskOutcome outcome;
  outcome.labels.reserve(workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    outcome.labels.push_back(
        sample_label(model, task, workers[i], latent_qualities[i], rng));
  }
  outcome.aggregated_answer = aggregate_labels(outcome.labels, estimate_weights);
  outcome.aggregate_correct = outcome.aggregated_answer == task.truth;
  outcome.scores.reserve(outcome.labels.size());
  for (const Label& label : outcome.labels) {
    outcome.scores.push_back(
        agreement_score(model, label, outcome.aggregated_answer));
  }
  return outcome;
}

}  // namespace melody::sim
