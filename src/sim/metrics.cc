#include "sim/metrics.h"

namespace melody::sim {

MetricSummary summarize(std::span<const RunRecord> records) {
  return summarize_after(records, 0);
}

MetricSummary summarize_after(std::span<const RunRecord> records,
                              std::size_t skip) {
  MetricSummary summary;
  if (records.size() <= skip) return summary;
  const auto window = records.subspan(skip);
  for (const RunRecord& r : window) {
    summary.mean_estimated_utility += static_cast<double>(r.estimated_utility);
    summary.mean_true_utility += static_cast<double>(r.true_utility);
    summary.mean_estimation_error += r.estimation_error;
    summary.mean_total_payment += r.total_payment;
    summary.mean_assignments += static_cast<double>(r.assignments);
  }
  const auto n = static_cast<double>(window.size());
  summary.mean_estimated_utility /= n;
  summary.mean_true_utility /= n;
  summary.mean_estimation_error /= n;
  summary.mean_total_payment /= n;
  summary.mean_assignments /= n;
  return summary;
}

std::vector<RunRecord> merge_run_records(
    const std::vector<std::vector<RunRecord>>& shards) {
  std::size_t longest = 0;
  for (const auto& records : shards) {
    longest = records.size() > longest ? records.size() : longest;
  }
  std::vector<RunRecord> merged(longest);
  // Weighted-error accumulator per run: sum of error * qualified, divided
  // by the summed qualified count at the end (the union-platform mean).
  std::vector<double> error_weight(longest, 0.0);
  for (std::size_t r = 0; r < longest; ++r) merged[r].run = static_cast<int>(r) + 1;
  for (const auto& records : shards) {
    for (std::size_t r = 0; r < records.size(); ++r) {
      const RunRecord& part = records[r];
      RunRecord& total = merged[r];
      total.estimated_utility += part.estimated_utility;
      total.true_utility += part.true_utility;
      total.total_payment += part.total_payment;
      total.assignments += part.assignments;
      total.qualified_workers += part.qualified_workers;
      total.no_shows += part.no_shows;
      total.churned_out += part.churned_out;
      total.scores_dropped += part.scores_dropped;
      total.scores_corrupted += part.scores_corrupted;
      error_weight[r] +=
          part.estimation_error * static_cast<double>(part.qualified_workers);
    }
  }
  for (std::size_t r = 0; r < longest; ++r) {
    merged[r].estimation_error =
        merged[r].qualified_workers > 0
            ? error_weight[r] / static_cast<double>(merged[r].qualified_workers)
            : 0.0;
  }
  return merged;
}

}  // namespace melody::sim
