#include "sim/metrics.h"

namespace melody::sim {

MetricSummary summarize(std::span<const RunRecord> records) {
  return summarize_after(records, 0);
}

MetricSummary summarize_after(std::span<const RunRecord> records,
                              std::size_t skip) {
  MetricSummary summary;
  if (records.size() <= skip) return summary;
  const auto window = records.subspan(skip);
  for (const RunRecord& r : window) {
    summary.mean_estimated_utility += static_cast<double>(r.estimated_utility);
    summary.mean_true_utility += static_cast<double>(r.true_utility);
    summary.mean_estimation_error += r.estimation_error;
    summary.mean_total_payment += r.total_payment;
    summary.mean_assignments += static_cast<double>(r.assignments);
  }
  const auto n = static_cast<double>(window.size());
  summary.mean_estimated_utility /= n;
  summary.mean_true_utility /= n;
  summary.mean_estimation_error /= n;
  summary.mean_total_payment /= n;
  summary.mean_assignments /= n;
  return summary;
}

}  // namespace melody::sim
