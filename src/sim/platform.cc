#include "sim/platform.h"

#include <cmath>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "sim/score_gen.h"
#include "util/parallel_for.h"

namespace melody::sim {

Platform::Platform(const LongTermScenario& scenario,
                   auction::Mechanism& mechanism,
                   estimators::QualityEstimator& estimator,
                   std::vector<SimWorker> workers, std::uint64_t seed)
    : scenario_(scenario),
      mechanism_(mechanism),
      estimator_(estimator),
      workers_(std::move(workers)),
      rng_(seed),
      master_seed_(seed) {
  for (const SimWorker& w : workers_) estimator_.register_worker(w.id());
  soa_.rebuild(workers_);
}

void Platform::set_policy(auction::WorkerId id, BidPolicy policy) {
  policies_[id] = policy;
}

void Platform::add_worker(SimWorker worker) {
  estimator_.register_worker(worker.id());
  workers_.push_back(std::move(worker));
  soa_.rebuild(workers_);
}

void Platform::set_fault_plan(FaultPlan plan) {
  plan.validate();
  fault_plan_ = plan;
}

bool Platform::update_bid(auction::WorkerId id, const auction::Bid& bid) {
  if (!soa_.contains(id)) return false;
  const std::size_t slot = soa_.slot_of(id);
  workers_[slot].set_true_bid(bid);
  soa_.set_bid(slot, bid);
  withdrawn_.erase(id);
  return true;
}

bool Platform::set_withdrawn(auction::WorkerId id, bool withdrawn) {
  if (!soa_.contains(id)) return false;
  if (withdrawn) {
    withdrawn_.insert(id);
  } else {
    withdrawn_.erase(id);
  }
  return true;
}

RunRecord Platform::step() {
  ++run_;
  RunRecord record;
  record.run = run_;

  const auction::AuctionConfig config = scenario_.auction_config();
  const bool faults_active = fault_plan_.active();
  obs::ScopedTimer step_timer(obs::timer_if_enabled("platform/step"));
  // Nests under the serve path's svc/run span when this step executes a
  // traced request's batch; inert in batch tools and untraced serving.
  obs::ScopedSpan step_span("platform/step");
  step_span.annotate("run", run_);

  // 0) Fault layer, part one: absence decisions. Each worker's absence is a
  //    pure function of (seed, plan, worker, run), so this stage is
  //    deterministic regardless of when the plan was installed or resumed.
  //    `present[i]` parallels workers_[i]; an absent worker submits no bid,
  //    wins nothing, and is scored as an empty set (the estimator's
  //    missing-observation path).
  const std::vector<auction::WorkerId>& worker_ids = soa_.ids();
  std::vector<char> present(workers_.size(), 1);
  if (faults_active) {
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      switch (absence_for(fault_plan_, master_seed_, worker_ids[i], run_,
                          scenario_.runs)) {
        case Absence::kPresent:
          break;
        case Absence::kNoShow:
          present[i] = 0;
          ++record.no_shows;
          break;
        case Absence::kChurned:
          present[i] = 0;
          ++record.churned_out;
          break;
      }
    }
  }

  // 1) Collect bids and the platform's quality estimates from the workers
  //    who showed up. `bidders[k]` is the SimWorker behind profiles[k].
  std::vector<auction::WorkerProfile> profiles;
  std::vector<std::size_t> bidder_slots;
  {
    obs::ScopedTimer timer(obs::timer_if_enabled("platform/bid_collection"));
    profiles.reserve(workers_.size());
    bidder_slots.reserve(workers_.size());
    const std::vector<double>& costs = soa_.costs();
    const std::vector<int>& frequencies = soa_.frequencies();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!present[i]) continue;
      if (!withdrawn_.empty() && withdrawn_.contains(worker_ids[i])) continue;
      auction::WorkerProfile p;
      p.id = worker_ids[i];
      const auto policy = policies_.find(p.id);
      p.bid = policy == policies_.end()
                  ? auction::Bid{costs[i], frequencies[i]}
                  : workers_[i].submitted_bid(policy->second, rng_);
      p.estimated_quality = estimator_.estimate(p.id);
      profiles.push_back(p);
      bidder_slots.push_back(i);
    }
  }

  // 2) Publish this run's tasks and run the reverse auction through the
  //    context entry point, forwarding the process-wide event sink plus
  //    this run's provenance (run index, active fault plan).
  const std::vector<auction::Task> tasks = scenario_.sample_tasks(rng_);
  {
    obs::ScopedTimer timer(obs::timer_if_enabled("platform/auction"));
    auction::AuctionContext context{profiles, tasks, config, obs::sink(),
                                    run_,
                                    faults_active ? &fault_plan_ : nullptr};
    context.trace = obs::current_trace();
    if (bid_book_enabled_) {
      // Fold this run's bid changes into the persistent ladder and hand the
      // mechanism the book (already current) plus the delta provenance.
      bid_book_.diff(profiles, delta_scratch_);
      bid_book_.apply(delta_scratch_);
      context.book = &bid_book_;
      context.deltas = delta_scratch_;
    }
    last_result_ = mechanism_.run(context);
  }
  record.estimated_utility = last_result_.requester_utility();
  record.total_payment = last_result_.total_payment();
  record.assignments = last_result_.assignments.size();

  // 3) Ground-truth bookkeeping: true utility and estimation error.
  assigned_scratch_.assign(workers_.size(), 0);
  {
    obs::ScopedTimer timer(obs::timer_if_enabled("platform/bookkeeping"));
    std::unordered_map<auction::TaskId, double> latent_received;
    for (const auto& a : last_result_.assignments) {
      const std::size_t slot = soa_.slot_of(a.worker);
      latent_received[a.task] += soa_.latent_quality(slot, run_);
      ++assigned_scratch_[slot];
    }
    for (const auto& t : tasks) {
      const auto it = latent_received.find(t.id);
      if (it != latent_received.end() && it->second >= t.quality_threshold) {
        ++record.true_utility;
      }
    }
    double error_sum = 0.0;
    std::size_t qualified = 0;
    for (std::size_t k = 0; k < profiles.size(); ++k) {
      if (!config.qualifies(profiles[k])) continue;
      ++qualified;
      error_sum += std::abs(soa_.latent_quality(bidder_slots[k], run_) -
                            profiles[k].estimated_quality);
    }
    record.qualified_workers = qualified;
    record.estimation_error = qualified > 0 ? error_sum / qualified : 0.0;
  }

  // 4) Workers complete tasks, the requester scores the answers, and the
  //    estimator digests the scores (empty sets for idle or absent
  //    workers). Each worker's scores come from his own (worker, run)
  //    stream — and fault decisions from a separate per-(worker, run)
  //    fault stream — so this stage shards across the pool without
  //    changing a single bit of output relative to the serial loop.
  std::vector<auction::WorkerId> ids(workers_.size());
  std::vector<lds::ScoreSet> scores(workers_.size());
  std::vector<ScoreFaultCounts> fault_counts(
      faults_active ? workers_.size() : 0);
  {
    obs::ScopedTimer timer(obs::timer_if_enabled("platform/score_gen"));
    util::parallel_for(
        util::shared_pool(), workers_.size(),
        [&](std::size_t i) {
          const auction::WorkerId id = worker_ids[i];
          const int count = assigned_scratch_[i];
          const double latent = soa_.latent_quality(i, run_);
          util::Rng stream(util::derive_stream(
              master_seed_, static_cast<std::uint64_t>(id),
              static_cast<std::uint64_t>(run_)));
          ids[i] = id;
          scores[i] = faults_active
                          ? generate_faulted_scores(
                                fault_plan_, scenario_.score_model, latent,
                                count, stream, master_seed_, id, run_,
                                fault_counts[i])
                          : generate_scores(scenario_.score_model, latent,
                                            count, stream);
        },
        /*min_grain=*/64);
  }
  {
    obs::ScopedTimer timer(obs::timer_if_enabled("platform/estimator_update"));
    estimator_.observe_run(ids, scores);
  }
  soa_.utilities(last_result_, utility_scratch_);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    total_utility_[worker_ids[i]] += utility_scratch_[i];
  }

  // Fault tallies: reduced on the main thread (deterministic order) and
  // mirrored into the registry so long-running deployments can watch
  // degradation rates without parsing per-run records.
  if (faults_active) {
    for (const ScoreFaultCounts& c : fault_counts) {
      record.scores_dropped += static_cast<std::size_t>(c.dropped);
      record.scores_corrupted += static_cast<std::size_t>(c.corrupted);
    }
    if (obs::enabled()) {
      static obs::Counter& no_shows =
          obs::registry().counter("faults/no_shows");
      static obs::Counter& churned =
          obs::registry().counter("faults/churned_out");
      static obs::Counter& dropped =
          obs::registry().counter("faults/scores_dropped");
      static obs::Counter& corrupted =
          obs::registry().counter("faults/scores_corrupted");
      no_shows.add(record.no_shows);
      churned.add(record.churned_out);
      dropped.add(record.scores_dropped);
      corrupted.add(record.scores_corrupted);
    }
  }

  // Per-run structured event: emitted from the main thread, after every
  // stage, so the stream order is deterministic at any thread count.
  obs::emit("platform/run",
            {{"run", record.run},
             {"estimated_utility", record.estimated_utility},
             {"true_utility", record.true_utility},
             {"estimation_error", record.estimation_error},
             {"total_payment", record.total_payment},
             {"assignments", record.assignments},
             {"qualified_workers", record.qualified_workers}});
  if (faults_active) {
    obs::emit("platform/faults",
              {{"run", record.run},
               {"no_shows", record.no_shows},
               {"churned_out", record.churned_out},
               {"scores_dropped", record.scores_dropped},
               {"scores_corrupted", record.scores_corrupted}});
  }
  if (run_hook_) run_hook_(record);
  return record;
}

std::vector<RunRecord> Platform::run_all() {
  std::vector<RunRecord> records;
  records.reserve(static_cast<std::size_t>(scenario_.runs));
  while (run_ < scenario_.runs) records.push_back(step());
  return records;
}

const SimWorker* Platform::find_worker(auction::WorkerId id) const noexcept {
  for (const SimWorker& w : workers_) {
    if (w.id() == id) return &w;
  }
  return nullptr;
}

double Platform::worker_total_utility(auction::WorkerId id) const {
  const auto it = total_utility_.find(id);
  return it == total_utility_.end() ? 0.0 : it->second;
}

}  // namespace melody::sim
