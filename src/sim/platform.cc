#include "sim/platform.h"

#include <cmath>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/sink.h"
#include "sim/score_gen.h"
#include "util/parallel_for.h"

namespace melody::sim {

Platform::Platform(const LongTermScenario& scenario,
                   auction::Mechanism& mechanism,
                   estimators::QualityEstimator& estimator,
                   std::vector<SimWorker> workers, std::uint64_t seed)
    : scenario_(scenario),
      mechanism_(mechanism),
      estimator_(estimator),
      workers_(std::move(workers)),
      rng_(seed),
      master_seed_(seed) {
  for (const SimWorker& w : workers_) estimator_.register_worker(w.id());
}

void Platform::set_policy(auction::WorkerId id, BidPolicy policy) {
  policies_[id] = policy;
}

void Platform::add_worker(SimWorker worker) {
  estimator_.register_worker(worker.id());
  workers_.push_back(std::move(worker));
}

RunRecord Platform::step() {
  ++run_;
  RunRecord record;
  record.run = run_;

  const auction::AuctionConfig config = scenario_.auction_config();
  obs::ScopedTimer step_timer(obs::timer_if_enabled("platform/step"));

  // 1) Collect bids and the platform's quality estimates.
  std::vector<auction::WorkerProfile> profiles;
  {
    obs::ScopedTimer timer(obs::timer_if_enabled("platform/bid_collection"));
    profiles.reserve(workers_.size());
    for (const SimWorker& w : workers_) {
      auction::WorkerProfile p;
      p.id = w.id();
      const auto policy = policies_.find(w.id());
      p.bid = policy == policies_.end()
                  ? w.true_bid()
                  : w.submitted_bid(policy->second, rng_);
      p.estimated_quality = estimator_.estimate(w.id());
      profiles.push_back(p);
    }
  }

  // 2) Publish this run's tasks and run the reverse auction through the
  //    context entry point, forwarding the process-wide event sink.
  const std::vector<auction::Task> tasks = scenario_.sample_tasks(rng_);
  {
    obs::ScopedTimer timer(obs::timer_if_enabled("platform/auction"));
    last_result_ = mechanism_.run(
        auction::AuctionContext{profiles, tasks, config, obs::sink()});
  }
  record.estimated_utility = last_result_.requester_utility();
  record.total_payment = last_result_.total_payment();
  record.assignments = last_result_.assignments.size();

  // 3) Ground-truth bookkeeping: true utility and estimation error.
  std::unordered_map<auction::WorkerId, int> assigned_count;
  {
    obs::ScopedTimer timer(obs::timer_if_enabled("platform/bookkeeping"));
    std::unordered_map<auction::TaskId, double> latent_received;
    std::unordered_map<auction::WorkerId, const SimWorker*> by_id;
    for (const SimWorker& w : workers_) by_id[w.id()] = &w;
    for (const auto& a : last_result_.assignments) {
      latent_received[a.task] += by_id.at(a.worker)->latent_quality(run_);
      ++assigned_count[a.worker];
    }
    for (const auto& t : tasks) {
      const auto it = latent_received.find(t.id);
      if (it != latent_received.end() && it->second >= t.quality_threshold) {
        ++record.true_utility;
      }
    }
    double error_sum = 0.0;
    std::size_t qualified = 0;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!config.qualifies(profiles[i])) continue;
      ++qualified;
      error_sum += std::abs(workers_[i].latent_quality(run_) -
                            profiles[i].estimated_quality);
    }
    record.qualified_workers = qualified;
    record.estimation_error = qualified > 0 ? error_sum / qualified : 0.0;
  }

  // 4) Workers complete tasks, the requester scores the answers, and the
  //    estimator digests the scores (empty sets for idle workers). Each
  //    worker's scores come from his own (worker, run) stream, so this
  //    stage shards across the pool without changing a single bit of
  //    output relative to the serial loop.
  std::vector<auction::WorkerId> ids(workers_.size());
  std::vector<lds::ScoreSet> scores(workers_.size());
  {
    obs::ScopedTimer timer(obs::timer_if_enabled("platform/score_gen"));
    util::parallel_for(
        util::shared_pool(), workers_.size(),
        [&](std::size_t i) {
          const SimWorker& w = workers_[i];
          const auto it = assigned_count.find(w.id());
          const int count = it == assigned_count.end() ? 0 : it->second;
          util::Rng stream(util::derive_stream(
              master_seed_, static_cast<std::uint64_t>(w.id()),
              static_cast<std::uint64_t>(run_)));
          ids[i] = w.id();
          scores[i] = generate_scores(scenario_.score_model,
                                      w.latent_quality(run_), count, stream);
        },
        /*min_grain=*/64);
  }
  {
    obs::ScopedTimer timer(obs::timer_if_enabled("platform/estimator_update"));
    estimator_.observe_run(ids, scores);
  }
  for (const SimWorker& w : workers_) {
    total_utility_[w.id()] += w.utility(last_result_);
  }

  // Per-run structured event: emitted from the main thread, after every
  // stage, so the stream order is deterministic at any thread count.
  obs::emit("platform/run",
            {{"run", record.run},
             {"estimated_utility", record.estimated_utility},
             {"true_utility", record.true_utility},
             {"estimation_error", record.estimation_error},
             {"total_payment", record.total_payment},
             {"assignments", record.assignments},
             {"qualified_workers", record.qualified_workers}});
  return record;
}

std::vector<RunRecord> Platform::run_all() {
  std::vector<RunRecord> records;
  records.reserve(static_cast<std::size_t>(scenario_.runs));
  while (run_ < scenario_.runs) records.push_back(step());
  return records;
}

double Platform::worker_total_utility(auction::WorkerId id) const {
  const auto it = total_utility_.find(id);
  return it == total_utility_.end() ? 0.0 : it->second;
}

}  // namespace melody::sim
