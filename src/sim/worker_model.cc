#include "sim/worker_model.h"

#include <algorithm>
#include <cmath>

namespace melody::sim {

double SimWorker::latent_quality(int run) const {
  if (latent_.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      std::clamp(run - 1, 0, static_cast<int>(latent_.size()) - 1));
  return latent_[index];
}

auction::Bid SimWorker::submitted_bid(const BidPolicy& policy,
                                      util::Rng& rng) const {
  auction::Bid bid = true_bid_;
  if (policy.cheat_probability <= 0.0 || !rng.bernoulli(policy.cheat_probability)) {
    return bid;
  }
  auto signed_magnitude = [&](double magnitude) {
    switch (policy.direction) {
      case MisreportDirection::kHigher:
        return rng.uniform(0.0, magnitude);
      case MisreportDirection::kLower:
        return -rng.uniform(0.0, magnitude);
      case MisreportDirection::kRandom:
        return rng.uniform(-magnitude, magnitude);
    }
    return 0.0;
  };
  if (policy.cheat_cost) {
    bid.cost = std::max(0.01, bid.cost * (1.0 + signed_magnitude(policy.cost_magnitude)));
  }
  if (policy.cheat_frequency) {
    const double delta =
        signed_magnitude(static_cast<double>(policy.frequency_magnitude));
    bid.frequency = std::max(
        1, bid.frequency + static_cast<int>(std::lround(delta)));
  }
  return bid;
}

double SimWorker::utility(const auction::AllocationResult& result) const {
  // A worker can complete at most his true frequency of tasks; payments for
  // assignments beyond it are forfeited (Section 7.5: an overbid frequency
  // cannot raise utility because "the worker's true frequency value remains
  // unchanged").
  int remaining = true_bid_.frequency;
  double utility = 0.0;
  for (const auto& a : result.assignments) {
    if (a.worker != id_ || remaining == 0) continue;
    --remaining;
    utility += a.payment - true_bid_.cost;
  }
  return utility;
}

std::vector<SimWorker> sample_population(const WorkerPopulationConfig& config,
                                         util::Rng& rng) {
  std::vector<SimWorker> workers;
  workers.reserve(static_cast<std::size_t>(config.count));
  for (int i = 0; i < config.count; ++i) {
    const auction::Bid bid{
        rng.uniform(config.cost_min, config.cost_max),
        static_cast<int>(rng.uniform_int(config.frequency_min,
                                         config.frequency_max))};
    const TrajectoryKind kind = sample_kind(config.mix, rng);
    const TrajectoryConfig traj = sample_config(kind, config.horizon, rng);
    workers.emplace_back(static_cast<auction::WorkerId>(i), bid,
                         generate_trajectory(traj, config.horizon, rng));
  }
  return workers;
}

}  // namespace melody::sim
