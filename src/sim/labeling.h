// Label-aggregation scoring substrate (paper footnote 5): in a real
// deployment the requester does not hand out oracle scores — scores come
// from unsupervised aggregation such as majority voting over redundant
// labels. This module provides that pipeline:
//
//   * multiclass labeling tasks with hidden ground truth,
//   * workers whose per-label accuracy is a calibrated function of their
//     latent quality (so the LDS quality model still drives behaviour),
//   * weighted-majority aggregation of the collected labels,
//   * agreement-based scores on the platform's score scale, suitable for
//     feeding straight into the quality estimators.
#pragma once

#include <vector>

#include "auction/types.h"
#include "lds/gaussian.h"
#include "util/rng.h"

namespace melody::sim {

/// One labeling task instance: `classes` possible answers, one correct.
struct LabelingTask {
  auction::TaskId id = -1;
  int classes = 2;
  int truth = 0;  // hidden from workers and platform
};

/// A submitted label for one task by one worker.
struct Label {
  auction::WorkerId worker = -1;
  auction::TaskId task = -1;
  int value = 0;
};

struct LabelingModel {
  /// Quality -> accuracy calibration: quality at `quality_floor` maps to
  /// chance level (1/classes) and at `quality_ceiling` to `max_accuracy`,
  /// linearly in between. Matches the paper's [1, 10] score scale.
  double quality_floor = 1.0;
  double quality_ceiling = 10.0;
  double max_accuracy = 0.97;
  /// Score scale for agreement-based scoring.
  double min_score = 1.0;
  double max_score = 10.0;
};

/// Per-label accuracy of a worker with the given latent quality.
double label_accuracy(const LabelingModel& model, double latent_quality,
                      int classes);

/// Sample the label a worker produces for a task: correct with probability
/// label_accuracy, otherwise uniform over the wrong classes.
Label sample_label(const LabelingModel& model, const LabelingTask& task,
                   auction::WorkerId worker, double latent_quality,
                   util::Rng& rng);

/// Aggregated answer for one task by weighted majority voting; weights are
/// the platform's current quality estimates (uniform if all non-positive).
/// Returns -1 for an empty label set. Ties break toward the smaller class
/// index (deterministic).
int aggregate_labels(const std::vector<Label>& labels,
                     const std::vector<double>& weights);

/// Agreement-based scoring: a worker's score for a task is max_score when
/// his label matches the aggregated answer and min_score otherwise —
/// exactly the information a platform has without ground truth.
double agreement_score(const LabelingModel& model, const Label& label,
                       int aggregated_answer);

/// Full per-task pipeline: collect one label per assigned worker, aggregate
/// by weighted majority, and return each worker's agreement score alongside
/// whether the aggregate matched the hidden truth.
struct TaskOutcome {
  int aggregated_answer = -1;
  bool aggregate_correct = false;
  std::vector<Label> labels;
  std::vector<double> scores;  // parallel to labels
};

TaskOutcome run_labeling_task(const LabelingModel& model,
                              const LabelingTask& task,
                              const std::vector<auction::WorkerId>& workers,
                              const std::vector<double>& latent_qualities,
                              const std::vector<double>& estimate_weights,
                              util::Rng& rng);

}  // namespace melody::sim
