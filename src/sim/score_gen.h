// Score generation per the emission model (Eq. 13): each completed task
// yields a score s ~ N(q^r, sigma_S^2), clamped into the platform's score
// range (Table 4: scores in [1, 10], sigma_S = 3).
#pragma once

#include "lds/gaussian.h"
#include "util/rng.h"

namespace melody::sim {

struct ScoreModel {
  double noise_stddev = 3.0;  // sigma_S
  double min_score = 1.0;
  double max_score = 10.0;
};

/// One score for one completed task given the worker's latent quality.
double generate_score(const ScoreModel& model, double latent_quality,
                      util::Rng& rng);

/// The full score set for a worker who completed `task_count` tasks.
lds::ScoreSet generate_scores(const ScoreModel& model, double latent_quality,
                              int task_count, util::Rng& rng);

}  // namespace melody::sim
