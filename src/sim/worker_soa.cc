#include "sim/worker_soa.h"

namespace melody::sim {

void WorkerStateSoA::rebuild(std::span<const SimWorker> workers) {
  const std::size_t n = workers.size();
  ids_.resize(n);
  cost_.resize(n);
  frequency_.resize(n);
  latent_data_.resize(n);
  latent_len_.resize(n);
  index_.clear();
  index_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SimWorker& w = workers[i];
    ids_[i] = w.id();
    cost_[i] = w.true_bid().cost;
    frequency_[i] = w.true_bid().frequency;
    const std::span<const double> trajectory = w.latent_trajectory();
    latent_len_[i] = static_cast<int>(trajectory.size());
    latent_data_[i] = trajectory.empty() ? nullptr : trajectory.data();
    index_.emplace(w.id(), i);
  }
}

void WorkerStateSoA::utilities(const auction::AllocationResult& result,
                               std::vector<double>& out) const {
  out.assign(ids_.size(), 0.0);
  remaining_scratch_.assign(frequency_.begin(), frequency_.end());
  // A worker can complete at most his true frequency of tasks; payments
  // for assignments beyond it are forfeited (Section 7.5). Assignments are
  // visited in result order, so each worker's partial sums accumulate in
  // the same order SimWorker::utility produced them.
  for (const auto& a : result.assignments) {
    const auto it = index_.find(a.worker);
    if (it == index_.end()) continue;
    const std::size_t slot = it->second;
    if (remaining_scratch_[slot] == 0) continue;
    --remaining_scratch_[slot];
    out[slot] += a.payment - cost_[slot];
  }
}

}  // namespace melody::sim
