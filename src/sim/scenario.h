// Experiment scenario definitions mirroring the paper's Table 3 (single-run
// auction settings I-III) and Table 4 (long-term quality updating).
#pragma once

#include <vector>

#include "auction/types.h"
#include "sim/score_gen.h"
#include "sim/worker_model.h"
#include "util/rng.h"

namespace melody::sim {

struct Range {
  double lo = 0.0;
  double hi = 0.0;
};

struct IntRange {
  int lo = 0;
  int hi = 0;
};

/// A single-run SRA instance family (Table 3): parameter ranges from which
/// workers and tasks are drawn uniformly at random.
struct SraScenario {
  Range quality{2.0, 4.0};     // mu_i
  Range cost{1.0, 2.0};        // c_i
  IntRange frequency{1, 5};    // n_i
  Range threshold{6.0, 12.0};  // Q_j
  int num_workers = 100;
  int num_tasks = 500;
  double budget = 800.0;

  /// Auction config whose qualification intervals match the sampling
  /// ranges (so no sampled worker is filtered out, as in the paper).
  auction::AuctionConfig auction_config() const;

  std::vector<auction::WorkerProfile> sample_workers(util::Rng& rng) const;
  std::vector<auction::Task> sample_tasks(util::Rng& rng) const;
};

/// Table 3 setting I: vary the number of workers; M = 500, B in {600, 800}.
SraScenario table3_setting_i(int num_workers, double budget);
/// Table 3 setting II: vary the budget; M = 500, N in {100, 250}.
SraScenario table3_setting_ii(double budget, int num_workers);
/// Table 3 setting III: vary the number of tasks; B = 2000, N in {100, 400}.
SraScenario table3_setting_iii(int num_tasks, int num_workers);

/// The long-term experiment of Table 4 / Fig. 9.
struct LongTermScenario {
  int num_workers = 300;     // N
  int num_tasks = 500;       // M^r, fixed per run
  int runs = 1000;
  double budget = 800.0;     // B^r
  Range cost{1.0, 2.0};      // c_i^r (true, fixed per worker)
  IntRange frequency{1, 5};  // n_i^r (true, fixed per worker)
  Range threshold{20.0, 40.0};  // Q_j^r, resampled every run
  ScoreModel score_model{3.0, 1.0, 10.0};  // sigma_S = 3, scores in [1,10]
  double initial_mu = 5.5;      // mu-hat^0
  double initial_sigma = 2.25;  // sigma-hat^0
  int reestimation_period = 10; // T
  PopulationMix mix;

  auction::AuctionConfig auction_config() const;
  WorkerPopulationConfig population_config() const;
  std::vector<auction::Task> sample_tasks(util::Rng& rng) const;
};

}  // namespace melody::sim
