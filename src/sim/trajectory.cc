#include "sim/trajectory.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/stats.h"

namespace melody::sim {

std::string to_string(TrajectoryKind kind) {
  switch (kind) {
    case TrajectoryKind::kRising: return "rising";
    case TrajectoryKind::kDeclining: return "declining";
    case TrajectoryKind::kFluctuating: return "fluctuating";
    case TrajectoryKind::kStable: return "stable";
  }
  return "unknown";
}

std::vector<double> generate_trajectory(const TrajectoryConfig& config, int runs,
                                        util::Rng& rng) {
  std::vector<double> quality;
  quality.reserve(static_cast<std::size_t>(std::max(runs, 0)));
  double drift = 0.0;  // integrated noise: a slow random walk
  for (int r = 1; r <= runs; ++r) {
    const double progress =
        std::min(1.0, static_cast<double>(r) / std::max(1, config.horizon));
    double shape = config.start_level;
    switch (config.kind) {
      case TrajectoryKind::kRising:
        shape += config.swing * progress;
        break;
      case TrajectoryKind::kDeclining:
        shape -= config.swing * progress;
        break;
      case TrajectoryKind::kFluctuating:
        shape += config.swing *
                 std::sin(2.0 * std::numbers::pi * r / config.period +
                          config.phase);
        break;
      case TrajectoryKind::kStable:
        break;
    }
    drift += rng.normal(0.0, config.noise_stddev);
    // Pull the walk gently back toward the deterministic shape so the noise
    // stays a perturbation rather than dominating the pattern.
    drift *= 0.98;
    quality.push_back(
        std::clamp(shape + drift, config.min_quality, config.max_quality));
  }
  return quality;
}

bool is_stable(std::span<const double> quality, const StabilityCriteria& c) {
  if (quality.size() < 2) return true;
  const util::LinearFit fit = util::linear_trend(quality);
  return std::abs(fit.slope) <= c.max_abs_slope &&
         util::variance(quality) < c.max_variance;
}

TrajectoryKind sample_kind(const PopulationMix& mix, util::Rng& rng) {
  const double total = mix.rising + mix.declining + mix.fluctuating + mix.stable;
  double draw = rng.uniform01() * total;
  if ((draw -= mix.rising) < 0.0) return TrajectoryKind::kRising;
  if ((draw -= mix.declining) < 0.0) return TrajectoryKind::kDeclining;
  if ((draw -= mix.fluctuating) < 0.0) return TrajectoryKind::kFluctuating;
  return TrajectoryKind::kStable;
}

TrajectoryConfig sample_config(TrajectoryKind kind, int horizon, util::Rng& rng) {
  TrajectoryConfig config;
  config.kind = kind;
  config.horizon = horizon;
  switch (kind) {
    case TrajectoryKind::kRising:
      config.start_level = rng.uniform(2.0, 5.0);
      config.swing = rng.uniform(2.5, 4.5);
      break;
    case TrajectoryKind::kDeclining:
      config.start_level = rng.uniform(6.0, 9.0);
      config.swing = rng.uniform(2.5, 4.5);
      break;
    case TrajectoryKind::kFluctuating:
      config.start_level = rng.uniform(4.5, 6.5);
      config.swing = rng.uniform(1.5, 3.0);
      config.period = rng.uniform(120.0, 400.0);
      config.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
      break;
    case TrajectoryKind::kStable:
      config.start_level = rng.uniform(3.5, 7.5);
      config.swing = 0.0;
      config.noise_stddev = 0.05;
      break;
  }
  return config;
}

}  // namespace melody::sim
