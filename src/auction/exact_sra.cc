#include "auction/exact_sra.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace melody::auction {

namespace {

struct Instance {
  std::vector<double> quality;   // mu_i of qualified workers
  std::vector<double> cost;      // c_i
  std::vector<int> frequency;    // n_i
  std::vector<double> threshold; // Q_j, ascending
};

/// Depth-first search: for each task (ascending threshold) either skip it or
/// try every minimal covering subset of workers with remaining frequency.
class Search {
 public:
  Search(const Instance& inst, double budget) : inst_(inst), budget_(budget) {
    remaining_freq_ = inst.frequency;
  }

  std::size_t solve() {
    best_ = 0;
    dfs(0, 0, budget_);
    return best_;
  }

 private:
  void dfs(std::size_t task, std::size_t satisfied, double budget) {
    best_ = std::max(best_, satisfied);
    if (task >= inst_.threshold.size()) return;
    // Bound: even satisfying every remaining task cannot beat the best.
    if (satisfied + (inst_.threshold.size() - task) <= best_) return;

    // Option 1: satisfy this task with some minimal covering subset.
    std::vector<std::size_t> chosen;
    enumerate_covers(task, satisfied, budget, 0, 0.0, 0.0, chosen);

    // Option 2: skip this task.
    dfs(task + 1, satisfied, budget);
  }

  /// Enumerate subsets of workers (by ascending index) whose qualities sum
  /// to >= threshold; recurse into dfs() as soon as coverage is reached, so
  /// only minimal-by-inclusion subsets are expanded.
  void enumerate_covers(std::size_t task, std::size_t satisfied, double budget,
                        std::size_t from, double covered, double spent,
                        std::vector<std::size_t>& chosen) {
    const double required = inst_.threshold[task];
    if (covered >= required) {
      for (std::size_t w : chosen) --remaining_freq_[w];
      dfs(task + 1, satisfied + 1, budget - spent);
      for (std::size_t w : chosen) ++remaining_freq_[w];
      return;
    }
    for (std::size_t w = from; w < inst_.quality.size(); ++w) {
      if (remaining_freq_[w] == 0) continue;
      const double cost = spent + inst_.cost[w];
      if (cost > budget + 1e-12) continue;
      chosen.push_back(w);
      enumerate_covers(task, satisfied, budget, w + 1,
                       covered + inst_.quality[w], cost, chosen);
      chosen.pop_back();
    }
  }

  const Instance& inst_;
  double budget_;
  std::vector<int> remaining_freq_;
  std::size_t best_ = 0;
};

}  // namespace

std::size_t exact_sra_optimum(std::span<const WorkerProfile> workers,
                              std::span<const Task> tasks,
                              const AuctionConfig& config) {
  Instance inst;
  for (const auto& w : workers) {
    if (w.bid.cost > 0.0 && w.bid.frequency > 0 && w.estimated_quality > 0.0 &&
        config.qualifies(w)) {
      inst.quality.push_back(w.estimated_quality);
      inst.cost.push_back(w.bid.cost);
      inst.frequency.push_back(w.bid.frequency);
    }
  }
  for (const auto& t : tasks) inst.threshold.push_back(t.quality_threshold);
  std::sort(inst.threshold.begin(), inst.threshold.end());

  if (inst.quality.size() > kExactSraMaxWorkers ||
      inst.threshold.size() > kExactSraMaxTasks) {
    throw std::invalid_argument("exact_sra_optimum: instance too large");
  }
  return Search(inst, config.budget).solve();
}

std::size_t exact_sra_optimum(const AuctionContext& context) {
  std::vector<WorkerProfile> book_storage;
  return exact_sra_optimum(resolve_workers(context, book_storage),
                           context.tasks, context.config);
}

}  // namespace melody::auction
