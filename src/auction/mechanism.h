// Abstract interface for single-run task-allocation mechanisms so the
// simulation platform and the benches can swap MELODY and the baselines.
#pragma once

#include <span>
#include <string>

#include "auction/types.h"

namespace melody::auction {

/// A mechanism maps (workers' bids + estimated qualities, tasks, config) to
/// an allocation and payment scheme. Implementations must be deterministic
/// given their construction-time RNG seed, and must never inspect anything
/// beyond the WorkerProfile (latent quality is off limits).
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  virtual AllocationResult run(std::span<const WorkerProfile> workers,
                               std::span<const Task> tasks,
                               const AuctionConfig& config) = 0;

  /// Human-readable mechanism name for bench tables.
  virtual std::string name() const = 0;
};

}  // namespace melody::auction
