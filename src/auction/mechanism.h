// Abstract interface for single-run task-allocation mechanisms so the
// simulation platform and the benches can swap MELODY and the baselines.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "auction/bid_book.h"
#include "auction/types.h"
#include "obs/sink.h"
#include "obs/trace.h"

namespace melody::sim {
struct FaultPlan;  // sim/fault.h — carried by pointer, never dereferenced here
}  // namespace melody::sim

namespace melody::auction {

/// Everything one auction run consumes, bundled: the worker profiles and
/// tasks (borrowed views — the caller keeps them alive for the duration of
/// run()), the per-run configuration, and an optional observability sink
/// for auction-level events.
///
/// This is the sole entry-point type: the deprecated three-argument shim
/// has been removed, so every caller constructs a context —
/// `mechanism.run({workers, tasks, config})` is the
/// minimal form. Long-term callers (the simulation platform) additionally
/// stamp the run index and the active fault plan so mechanisms and their
/// event streams can tell runs apart without a second overload.
struct AuctionContext {
  std::span<const WorkerProfile> workers;
  std::span<const Task> tasks;
  const AuctionConfig& config;
  /// Receiver for auction-level events; nullptr drops them for free.
  obs::Sink* sink = nullptr;
  /// 1-based run index within a long-term simulation; 0 for standalone
  /// auctions (tools, tests, single-run benches).
  int run = 0;
  /// The fault plan active in the enclosing simulation, if any. Mechanisms
  /// must never let it influence the allocation — faults are applied by
  /// the platform before and after the auction — but it is part of the
  /// run's provenance and may be surfaced in events.
  const sim::FaultPlan* faults = nullptr;

  /// Optional persistent price-ladder bid book. When non-null it holds the
  /// current bid population in (ratio desc, id asc) ladder order, and
  /// mechanisms with supports_incremental() may rank from it directly
  /// instead of rebuilding from `workers`. Contract: when both `workers`
  /// and `book` are set they describe the same population (the caller
  /// applies all deltas to the book before run()); when `workers` is empty
  /// the book alone is authoritative.
  const BidBook* book = nullptr;
  /// The bids that changed since the previous run (already applied to the
  /// book). Provenance for incremental mechanisms and event streams — must
  /// never influence the allocation beyond what the book already reflects.
  std::span<const BidDelta> deltas;
  /// The request trace context active when the platform entered this run
  /// (inactive for untraced runs and standalone auctions). Mechanism-phase
  /// ScopedSpans pick their parent up from the thread-local slot
  /// automatically; this copy is provenance for sinks and mechanisms that
  /// hand work to other threads. Must never influence the allocation.
  obs::TraceContext trace;

  /// Emit a structured event to this context's sink, falling back to the
  /// process-wide obs::sink() when none was attached.
  void emit(std::string_view name,
            std::initializer_list<obs::Field> fields) const {
    if (sink != nullptr) {
      sink->event(name, std::span<const obs::Field>(fields.begin(),
                                                    fields.size()));
    } else {
      obs::emit(name, fields);
    }
  }
};

/// A mechanism maps (workers' bids + estimated qualities, tasks, config) to
/// an allocation and payment scheme. Implementations must be deterministic
/// given their construction-time RNG seed, and must never inspect anything
/// beyond the WorkerProfile (latent quality is off limits). Observability
/// (timers, counters, context events) must never influence the allocation:
/// instrumented and uninstrumented runs produce bit-identical results.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Sole entry point: `mechanism.run({workers, tasks, config})`.
  virtual AllocationResult run(const AuctionContext& context) = 0;

  /// Human-readable mechanism name for bench tables.
  virtual std::string name() const = 0;

  /// True when run() can rank directly from AuctionContext::book instead of
  /// re-sorting the worker span. Mechanisms that return false still accept
  /// book-only contexts through resolve_workers() (full rebuild).
  virtual bool supports_incremental() const { return false; }
};

/// Adapter for non-incremental mechanisms: the effective worker span for a
/// context. Returns `context.workers` verbatim when present; otherwise
/// materializes the bid book into `storage` (sorted by ascending id, the
/// order platforms submit worker spans in) and returns a view of it.
std::span<const WorkerProfile> resolve_workers(
    const AuctionContext& context, std::vector<WorkerProfile>& storage);

}  // namespace melody::auction
