// Abstract interface for single-run task-allocation mechanisms so the
// simulation platform and the benches can swap MELODY and the baselines.
#pragma once

#include <span>
#include <string>

#include "auction/types.h"
#include "obs/sink.h"

namespace melody::auction {

/// Everything one auction run consumes, bundled: the worker profiles and
/// tasks (borrowed views — the caller keeps them alive for the duration of
/// run()), the per-run configuration, and an optional observability sink
/// for auction-level events.
///
/// This is the primary entry-point type since the obs layer landed
/// (previously mechanisms took three positional arguments). Migration path:
/// existing `run(workers, tasks, config)` call sites keep compiling through
/// the non-virtual shim on Mechanism below, which wraps the arguments in a
/// context with a null sink; new call sites (Platform, tools) construct the
/// context directly and attach a sink. Mechanism implementations override
/// only the context form.
struct AuctionContext {
  std::span<const WorkerProfile> workers;
  std::span<const Task> tasks;
  const AuctionConfig& config;
  /// Receiver for auction-level events; nullptr drops them for free.
  obs::Sink* sink = nullptr;

  /// Emit a structured event to this context's sink, falling back to the
  /// process-wide obs::sink() when none was attached.
  void emit(std::string_view name,
            std::initializer_list<obs::Field> fields) const {
    if (sink != nullptr) {
      sink->event(name, std::span<const obs::Field>(fields.begin(),
                                                    fields.size()));
    } else {
      obs::emit(name, fields);
    }
  }
};

/// A mechanism maps (workers' bids + estimated qualities, tasks, config) to
/// an allocation and payment scheme. Implementations must be deterministic
/// given their construction-time RNG seed, and must never inspect anything
/// beyond the WorkerProfile (latent quality is off limits). Observability
/// (timers, counters, context events) must never influence the allocation:
/// instrumented and uninstrumented runs produce bit-identical results.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Primary entry point. Implementations should also pull in the shim
  /// below with `using Mechanism::run;` so three-argument call sites keep
  /// resolving on concrete mechanism types.
  virtual AllocationResult run(const AuctionContext& context) = 0;

  /// Back-compat shim for pre-AuctionContext call sites: wraps the
  /// arguments in a context (null sink) and delegates to run(context).
  AllocationResult run(std::span<const WorkerProfile> workers,
                       std::span<const Task> tasks,
                       const AuctionConfig& config) {
    return run(AuctionContext{workers, tasks, config});
  }

  /// Human-readable mechanism name for bench tables.
  virtual std::string name() const = 0;
};

}  // namespace melody::auction
