#include "auction/opt_ub.h"

#include <algorithm>
#include <vector>

namespace melody::auction {

std::size_t opt_upper_bound(std::span<const WorkerProfile> workers,
                            std::span<const Task> tasks,
                            const AuctionConfig& config) {
  // Pooled fractional supply: (quality units, cost density) per worker.
  struct Supply {
    double quality;  // n_i * mu_i
    double density;  // c_i / mu_i
  };
  std::vector<Supply> supply;
  supply.reserve(workers.size());
  for (const auto& w : workers) {
    if (w.bid.cost > 0.0 && w.bid.frequency > 0 && w.estimated_quality > 0.0 &&
        config.qualifies(w)) {
      supply.push_back({w.estimated_quality * w.bid.frequency,
                        w.bid.cost / w.estimated_quality});
    }
  }
  std::sort(supply.begin(), supply.end(),
            [](const Supply& a, const Supply& b) { return a.density < b.density; });

  std::vector<double> thresholds;
  thresholds.reserve(tasks.size());
  for (const auto& t : tasks) thresholds.push_back(t.quality_threshold);
  std::sort(thresholds.begin(), thresholds.end());

  // Fill tasks cheapest-first from the cheapest remaining supply.
  double budget = config.budget;
  std::size_t next_supply = 0;
  double supply_left = supply.empty() ? 0.0 : supply[0].quality;
  std::size_t satisfied = 0;
  for (double required : thresholds) {
    double cost = 0.0;
    // Tentatively consume supply; snapshot for rollback if unaffordable.
    const std::size_t snap_index = next_supply;
    const double snap_left = supply_left;
    double need = required;
    while (need > 0.0 && next_supply < supply.size()) {
      const double take = std::min(need, supply_left);
      cost += take * supply[next_supply].density;
      need -= take;
      supply_left -= take;
      if (supply_left <= 0.0) {
        ++next_supply;
        supply_left =
            next_supply < supply.size() ? supply[next_supply].quality : 0.0;
      }
    }
    if (need > 1e-12 || cost > budget + 1e-9) {
      // Out of supply or budget: no further (larger) task can be satisfied.
      next_supply = snap_index;
      supply_left = snap_left;
      break;
    }
    budget -= cost;
    ++satisfied;
  }
  return satisfied;
}

std::size_t opt_upper_bound(const AuctionContext& context) {
  std::vector<WorkerProfile> book_storage;
  return opt_upper_bound(resolve_workers(context, book_storage),
                         context.tasks, context.config);
}

}  // namespace melody::auction
