// Core value types for the single-run reverse auction (SRA problem,
// Definition 4 of the paper) shared by every mechanism implementation.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace melody::auction {

using WorkerId = std::int32_t;
using TaskId = std::int32_t;

/// A worker's submitted bid: per-task cost c_i and maximum number of tasks
/// (frequency) n_i he is willing to complete in this run.
struct Bid {
  double cost = 0.0;
  int frequency = 0;

  bool operator==(const Bid&) const = default;
};

/// The platform-side view of one worker entering an auction run: his bid
/// plus the platform's current estimate mu_i = E[alpha(q_i^r)] of his
/// quality. True (latent) quality lives in the simulation layer, never here:
/// mechanisms must only see what a real platform would see.
struct WorkerProfile {
  WorkerId id = -1;
  Bid bid;
  double estimated_quality = 0.0;  // mu_i
};

/// One crowdsourcing task with its integrated-quality threshold Q_j
/// (Definition 2: satisfied iff sum of assigned workers' mu_i >= Q_j).
struct Task {
  TaskId id = -1;
  double quality_threshold = 0.0;  // Q_j
};

/// Per-run auction parameters: the requester's budget B and the platform's
/// qualification intervals [Theta_m, Theta_M] (quality) and [C_m, C_M]
/// (cost), which define the qualified worker set W^r (Algorithm 1, line 1).
struct AuctionConfig {
  double budget = 0.0;
  double theta_min = 0.0;
  double theta_max = std::numeric_limits<double>::infinity();
  double cost_min = 0.0;
  double cost_max = std::numeric_limits<double>::infinity();

  /// True iff the worker passes the qualification filter of Alg. 1 line 1.
  bool qualifies(const WorkerProfile& w) const noexcept {
    return qualifies(w.estimated_quality, w.bid.cost);
  }

  /// Value-form qualification filter for callers that hold quality/cost in
  /// structure-of-arrays form (e.g. the bid-book ladder walk) — exactly the
  /// same comparisons as the profile overload.
  bool qualifies(double estimated_quality, double cost) const noexcept {
    return estimated_quality >= theta_min && estimated_quality <= theta_max &&
           cost >= cost_min && cost <= cost_max;
  }

  /// The theoretical approximation constant lambda of Lemma 3:
  /// C_M^2 (Theta_m + Theta_M) Theta_M^2 / (C_m^2 Theta_m^3).
  double lambda() const noexcept;
};

/// One winning (worker, task) pair with its payment p_{i,j}.
struct Assignment {
  WorkerId worker = -1;
  TaskId task = -1;
  double payment = 0.0;
};

/// Outcome of one auction run: the allocation scheme X and payment scheme P
/// restricted to winners, plus the list of selected (satisfied) tasks.
struct AllocationResult {
  std::vector<Assignment> assignments;
  std::vector<TaskId> selected_tasks;

  /// Requester's (estimated) utility U^r: every selected task is satisfied
  /// with respect to estimated quality by construction.
  std::size_t requester_utility() const noexcept { return selected_tasks.size(); }

  /// Total payment across all assignments (must be <= budget).
  double total_payment() const noexcept;

  /// Sum of payments made to one worker.
  double payment_to(WorkerId worker) const noexcept;

  /// Number of tasks assigned to one worker (<= his bid frequency).
  int tasks_assigned_to(WorkerId worker) const noexcept;

  /// Workers assigned to one task.
  std::vector<WorkerId> workers_of(TaskId task) const;

  /// True iff the given (worker, task) pair won.
  bool is_assigned(WorkerId worker, TaskId task) const noexcept;
};

/// Validation helpers shared by tests and mechanisms. Each returns an empty
/// string when the result is valid, otherwise a human-readable violation.
std::string check_budget_feasibility(const AllocationResult& result,
                                     const AuctionConfig& config);
std::string check_frequency_feasibility(const AllocationResult& result,
                                        std::span<const WorkerProfile> workers);
std::string check_task_satisfaction(const AllocationResult& result,
                                    std::span<const WorkerProfile> workers,
                                    std::span<const Task> tasks);

}  // namespace melody::auction
