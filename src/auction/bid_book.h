// Persistent price-ladder bid book for continuous auctions.
//
// The book keeps every live bid on an ordered ladder keyed by the greedy
// score ratio mu_i / c_i — descending, ties broken by ascending worker id,
// which is exactly the total order the ranking-queue rank sort produces.
// Because the order is total, a ladder maintained incrementally (insert /
// remove / update one bid at a time, O(log N) each) is guaranteed to hold
// the same permutation a full rebuild-and-sort would compute, so the greedy
// mechanism can materialize its ranking queue from the ladder in O(N) with
// bit-identical allocation (locked by test_bid_book / test_incremental_auction).
//
// Layout follows wzli/DecentralizedPathAuction's linked price ladder: a
// slot arena of parallel arrays with prev/next links for O(1) neighbor
// queries, and cheap check_auction_links-style invariant checks for
// property tests. Order maintenance is LAZY: a mutation is O(1) — write
// the slot arrays, mark the slot dirty — and the ordered structures (the
// contiguous materialized image, the prev/next links derived from it, and
// the rank cache) are repaired on first read by a sorted merge of the
// dirty slots into the previous image. That keeps the per-run cost of the
// incremental auction at ~one streaming pass instead of D tree operations,
// which is where the low-churn re-run speedup actually comes from.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "auction/types.h"

namespace melody::auction {

/// One observed change to the bid population between two auction runs.
/// Upserts carry the worker's full new profile (absolute, not relative, so
/// applying a delta twice is a no-op); withdrawals carry only the id.
struct BidDelta {
  enum class Kind : std::uint8_t { kUpsert, kWithdraw };
  Kind kind = Kind::kUpsert;
  WorkerProfile profile;  // kWithdraw: only profile.id is meaningful

  bool operator==(const BidDelta&) const = default;
};

class BidBook {
 public:
  using Slot = std::int32_t;
  static constexpr Slot kNone = -1;

  BidBook() = default;

  std::size_t size() const noexcept { return index_.size(); }
  bool empty() const noexcept { return index_.empty(); }
  bool contains(WorkerId id) const { return index_.contains(id); }

  // --- Ladder navigation (slots are stable across updates of the same
  // worker; kNone terminates both directions). head() is the best ratio.
  // Links are repaired lazily from the materialized image on first read
  // after churn: O(N) once, then O(1) until the next reorder.
  Slot head() const {
    ensure_links();
    return head_;
  }
  Slot tail() const {
    ensure_links();
    return tail_;
  }
  Slot next(Slot s) const {
    ensure_links();
    return next_[static_cast<std::size_t>(s)];
  }
  Slot prev(Slot s) const {
    ensure_links();
    return prev_[static_cast<std::size_t>(s)];
  }
  Slot slot_of(WorkerId id) const;

  WorkerId id_at(Slot s) const { return id_[static_cast<std::size_t>(s)]; }
  double quality_at(Slot s) const {
    return quality_[static_cast<std::size_t>(s)];
  }
  double cost_at(Slot s) const { return cost_[static_cast<std::size_t>(s)]; }
  int frequency_at(Slot s) const {
    return frequency_[static_cast<std::size_t>(s)];
  }
  /// The ladder sort ratio: quality / cost, or -inf for bids that can never
  /// qualify (non-positive or non-finite quality or cost), which sink to
  /// the tail without breaking the strict weak order.
  double ratio_at(Slot s) const { return ratio_[static_cast<std::size_t>(s)]; }
  WorkerProfile profile_at(Slot s) const {
    const auto i = static_cast<std::size_t>(s);
    return {id_[i], {cost_[i], frequency_[i]}, quality_[i]};
  }

  /// 0-based ladder position (0 == best ratio). Lazily reindexed after
  /// structural churn: O(N) once, then O(1) until the next reorder.
  std::size_t rank_of(WorkerId id) const;

  // --- Mutation. All maintain the ladder invariants incrementally.

  /// Insert or update one bid. Returns true when the worker was new.
  /// An update whose sort key is unchanged (same ratio) keeps the slot's
  /// ladder position and rank cache; otherwise the slot is relinked.
  bool upsert(const WorkerProfile& profile);

  /// Remove one bid. Returns false when the worker was not in the book.
  bool erase(WorkerId id);

  /// Apply a delta batch in order (upsert/withdraw). Idempotent: replaying
  /// a batch already applied leaves the book unchanged.
  void apply(std::span<const BidDelta> deltas);

  void clear();

  /// Replace the whole book with the given profiles (ids must be unique).
  void bulk_load(std::span<const WorkerProfile> profiles);

  /// Compute the delta batch transforming this book's content into exactly
  /// `target` (ids must be unique within target): upserts for new/changed
  /// workers in target order, then withdrawals for vanished workers in
  /// ladder order — a deterministic function of (book, target). Appends to
  /// `out` (cleared first). Does not modify the ladder.
  void diff(std::span<const WorkerProfile> target,
            std::vector<BidDelta>& out) const;

  /// The book's content as profiles sorted by ascending worker id.
  std::vector<WorkerProfile> snapshot_by_id() const;

  /// The ladder content in ladder order as contiguous parallel spans,
  /// valid until the next mutation.
  struct LadderView {
    std::span<const WorkerId> ids;
    std::span<const double> quality;
    std::span<const double> cost;
    std::span<const int> frequency;
    std::span<const double> ratio;

    std::size_t size() const noexcept { return ids.size(); }
  };

  /// Materialize the ladder into contiguous arrays (cached). After churn
  /// the cache is repaired by a sorted merge of the dirtied slots into the
  /// previous image — O(N + D log D) streaming passes instead of a sort or
  /// a pointer-chasing walk — which is what makes ranking from the book
  /// cheaper than rebuild-and-radix-sort on low-churn re-runs. Falls back
  /// to a full sort when most of the book changed (or no image exists
  /// yet). The merge respects the same (ratio desc, id asc) total order
  /// the ladder holds, so the view is always the exact ladder sequence
  /// (asserted by check_links).
  LadderView materialized() const;

  /// check_auction_links-style invariant sweep: mutual prev/next links,
  /// strict (ratio desc, id asc) ordering, no cycles, index agreement,
  /// rank-cache consistency, and materialized-view agreement. Returns ""
  /// when healthy, else a description.
  std::string check_links() const;

  /// FNV-1a digest of the ladder content in ladder order.
  std::uint64_t content_digest() const;

  // --- Serialization (embedded in the MLDYCKPT / MLDYSVCK checkpoints).
  void save(std::ostream& out) const;
  /// Replaces the book; throws std::runtime_error on a malformed blob
  /// (bad magic, unsorted ladder, duplicate ids, truncation).
  void load(std::istream& in);

 private:
  struct Key {
    double ratio = 0.0;
    WorkerId id = -1;
  };
  struct KeyLess {
    bool operator()(const Key& a, const Key& b) const noexcept {
      if (a.ratio != b.ratio) return a.ratio > b.ratio;
      return a.id < b.id;
    }
  };

  static double ladder_ratio(double quality, double cost) noexcept;

  Key key_at(Slot s) const {
    const auto i = static_cast<std::size_t>(s);
    return {ratio_[i], id_[i]};
  }
  Slot allocate_slot();

  /// Record `slot` as changed since the last materialization (no-op while
  /// no materialized image exists — a full sort rebuilds from scratch).
  void mark_dirty(Slot slot);
  void materialize_full() const;
  void materialize_merge() const;
  /// Rebuild prev/next/head/tail from the (repaired) materialized image.
  void ensure_links() const;

  // Slot arena: parallel arrays, stable per-worker slots, free-list reuse.
  std::vector<WorkerId> id_;
  std::vector<double> quality_;
  std::vector<double> cost_;
  std::vector<int> frequency_;
  std::vector<double> ratio_;
  std::vector<Slot> free_;

  // Navigation links, derived lazily from the materialized image (see
  // ensure_links); mutable because const reads repair them.
  mutable std::vector<Slot> prev_;
  mutable std::vector<Slot> next_;
  mutable Slot head_ = kNone;
  mutable Slot tail_ = kNone;
  mutable bool links_valid_ = true;

  std::unordered_map<WorkerId, Slot> index_;    // id -> slot

  // Lazy rank cache (mutable: reads reindex on demand).
  mutable std::vector<std::uint32_t> rank_;
  mutable bool rank_valid_ = false;

  // Epoch-marked scratch for diff(): seen_[slot] == seen_epoch_ means the
  // slot appeared in the current diff's target (avoids a per-call set).
  mutable std::vector<std::uint32_t> seen_;
  mutable std::uint32_t seen_epoch_ = 0;

  // Materialized-ladder cache (see materialized()): the ladder image in
  // ladder order plus the slots it was taken from, a second buffer set the
  // merge repair ping-pongs into, and the dirty list accumulated by
  // upsert/erase since the image was taken. All lazily maintained by const
  // reads, hence mutable.
  struct LadderImage {
    std::vector<Slot> slots;
    std::vector<WorkerId> ids;
    std::vector<double> quality;
    std::vector<double> cost;
    std::vector<int> frequency;
    std::vector<double> ratio;

    void resize(std::size_t n) {
      slots.resize(n);
      ids.resize(n);
      quality.resize(n);
      cost.resize(n);
      frequency.resize(n);
      ratio.resize(n);
    }
  };
  mutable LadderImage mat_;
  mutable LadderImage mat_scratch_;
  mutable bool mat_valid_ = false;
  mutable std::vector<Slot> mat_dirty_;
  mutable std::vector<std::uint8_t> mat_dirty_mark_;  // per-slot membership
};

}  // namespace melody::auction
