#include "auction/greedy_core.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <numeric>

#include "obs/metrics.h"
#include "util/parallel_for.h"

namespace melody::auction::internal {

namespace {

// Below these sizes the fork-join overhead exceeds the loop body; the
// serial path is also the reference the determinism tests compare against.
constexpr std::size_t kParallelSortThreshold = 4096;
constexpr std::size_t kParallelPricingWork = std::size_t{1} << 17;
// Below this the counting passes cost more than comparison sorting.
constexpr std::size_t kRadixSortThreshold = 2048;

/// Sort key for the ranking queue: the quality-per-cost ratio precomputed
/// once per worker (the AoS comparator divided twice per comparison), plus
/// the source position in the caller's worker span for the scatter.
struct RankEntry {
  double ratio = 0.0;  // mu-hat_i / c_i
  WorkerId id = 0;
  std::uint32_t src = 0;
};

/// Radix-sort element: the ratio mapped to a descending-order integer key
/// plus the source position. Qualified ratios are positive (quality and
/// cost are both > 0 after the filter), and for non-negative IEEE-754
/// doubles the raw bit pattern is monotone in the value — so the
/// complemented bits sort descending-by-ratio, bit-exactly the comparator
/// order.
struct RankKey {
  std::uint64_t key = 0;
  std::uint32_t src = 0;
};

/// Per-thread scratch reused across auction runs so the hot path performs
/// no allocations once warm. Everything here is dead when its function
/// returns — only RankingQueue (owning) crosses call boundaries — so
/// thread-local reuse is safe even with mechanisms running concurrently on
/// pool threads (ParallelSweep), where each thread runs one auction at a
/// time end to end.
struct GreedyArena {
  std::vector<RankEntry> entries;       // build_ranking_queue
  std::vector<RankKey> rank_keys;       // radix rank sort
  std::vector<RankKey> rank_scratch;    // radix ping-pong buffer
  std::vector<std::size_t> task_order;  // pre_allocate
  std::vector<int> available;           // pre_allocate
};

GreedyArena& arena() {
  static thread_local GreedyArena scratch;
  return scratch;
}

/// Stable LSD radix sort of `keys`, ascending by RankKey::key: six 11-bit
/// counting passes ping-ponging through `scratch`, with passes whose digit
/// is constant across the input skipped (for ratios from a narrow market
/// range the sign/exponent passes collapse). Stability is what transports
/// the tie-break: the caller only takes this path when the entries arrive
/// in strictly ascending id order, so equal ratios keep ascending ids —
/// exactly the comparator's (ratio desc, id asc) total order, and since
/// that order is total (ids unique), the permutation is identical to the
/// comparison sort's.
void radix_rank_sort(std::vector<RankKey>& keys,
                     std::vector<RankKey>& scratch) {
  constexpr int kDigitBits = 11;
  constexpr std::uint32_t kDigits = 1u << kDigitBits;
  scratch.resize(keys.size());
  std::uint32_t count[kDigits];
  for (int shift = 0; shift < 64; shift += kDigitBits) {
    std::fill(std::begin(count), std::end(count), 0u);
    for (const RankKey& e : keys) ++count[(e.key >> shift) & (kDigits - 1)];
    if (count[(keys[0].key >> shift) & (kDigits - 1)] == keys.size()) {
      continue;  // constant digit: the pass would be the identity
    }
    std::uint32_t offset = 0;
    for (std::uint32_t& c : count) {
      const std::uint32_t bucket = c;
      c = offset;
      offset += bucket;
    }
    for (const RankKey& e : keys) {
      scratch[count[(e.key >> shift) & (kDigits - 1)]++] = e;
    }
    std::swap(keys, scratch);
  }
}

}  // namespace

RankingQueue build_ranking_queue(std::span<const WorkerProfile> workers,
                                 const AuctionConfig& config) {
  // Line 1: qualification filter W <- {i : Theta_m <= mu_i <= Theta_M,
  // C_m <= c_i <= C_M}. Workers with non-positive cost, quality, or
  // frequency can never participate meaningfully and are excluded.
  std::vector<RankEntry>& entries = arena().entries;
  entries.clear();
  entries.reserve(workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerProfile& w = workers[i];
    if (w.bid.cost > 0.0 && w.bid.frequency > 0 && w.estimated_quality > 0.0 &&
        config.qualifies(w)) {
      entries.push_back({w.estimated_quality / w.bid.cost, w.id,
                         static_cast<std::uint32_t>(i)});
    }
  }
  // Line 2: ranking queue, descending estimated quality per unit cost.
  // Ties broken by worker id, which makes the order total — so every path
  // below (serial comparison sort, block-sort-and-merge parallel sort,
  // stable radix sort) produces the identical permutation, and the
  // precomputed-ratio comparator yields the same order as dividing inside
  // the comparison (same operands, same IEEE-754 quotient).
  obs::ScopedTimer sort_timer(obs::timer_if_enabled("auction/rank_sort"));
  if (obs::enabled()) {
    obs::registry().counter("auction/qualified_workers").add(entries.size());
  }
  const std::size_t n = entries.size();

  // Large inputs in ascending id order (the common case: callers pass
  // worker spans in id order) take the linear-time radix path — the rank
  // sort is the O(N log N) term of the whole mechanism, and the radix
  // passes stream contiguous 16-byte keys instead of comparison-shuffling.
  bool radix = n >= kRadixSortThreshold;
  for (std::size_t i = 1; radix && i < n; ++i) {
    radix = entries[i - 1].id < entries[i].id;
  }
  RankingQueue queue;
  queue.ids.resize(n);
  queue.quality.resize(n);
  queue.density.resize(n);
  queue.frequency.resize(n);
  const auto scatter = [&](auto src_of) {
    // Scatter into the SoA arrays in rank order.
    for (std::size_t p = 0; p < n; ++p) {
      const WorkerProfile& w = workers[src_of(p)];
      queue.ids[p] = w.id;
      queue.quality[p] = w.estimated_quality;
      queue.density[p] = w.bid.cost / w.estimated_quality;
      queue.frequency[p] = w.bid.frequency;
    }
  };
  if (radix) {
    std::vector<RankKey>& keys = arena().rank_keys;
    keys.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = {~std::bit_cast<std::uint64_t>(entries[i].ratio),
                 entries[i].src};
    }
    radix_rank_sort(keys, arena().rank_scratch);
    scatter([&](std::size_t p) { return keys[p].src; });
    return queue;
  }
  util::parallel_sort(util::shared_pool(), entries.begin(), entries.end(),
                      [](const RankEntry& a, const RankEntry& b) {
                        if (a.ratio != b.ratio) return a.ratio > b.ratio;
                        return a.id < b.id;
                      },
                      kParallelSortThreshold);
  scatter([&](std::size_t p) { return entries[p].src; });
  return queue;
}

RankingQueue build_ranking_queue(const BidBook& book,
                                 const AuctionConfig& config) {
  // The ladder is already the rank sort's total order (ratio desc, id asc)
  // over the whole population; one filtered pass over the materialized
  // image — contiguous arrays, merge-repaired from the bids that actually
  // changed since the last run instead of pointer-chased or re-sorted —
  // yields the qualified subsequence in exactly the permutation the sort
  // paths produce. The density division uses the same operands
  // (cost / quality) as the rebuild path's scatter, so every queue value
  // is bit-identical.
  obs::ScopedTimer walk_timer(obs::timer_if_enabled("auction/rank_from_book"));
  const BidBook::LadderView ladder = book.materialized();
  RankingQueue queue;
  const std::size_t n = ladder.size();
  queue.ids.reserve(n);
  queue.quality.reserve(n);
  queue.density.reserve(n);
  queue.frequency.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    const double cost = ladder.cost[p];
    const double quality = ladder.quality[p];
    const int frequency = ladder.frequency[p];
    if (cost > 0.0 && frequency > 0 && quality > 0.0 &&
        config.qualifies(quality, cost)) {
      queue.ids.push_back(ladder.ids[p]);
      queue.quality.push_back(quality);
      queue.density.push_back(cost / quality);
      queue.frequency.push_back(frequency);
    }
  }
  if (obs::enabled()) {
    obs::registry().counter("auction/qualified_workers").add(queue.size());
  }
  return queue;
}

std::vector<PreAllocation> pre_allocate(const RankingQueue& queue,
                                        std::span<const Task> tasks,
                                        PaymentRule rule) {
  // The allocation-loop timer covers the whole stage-1 pass; the pricing
  // timer isolates the per-task critical-value walks inside it (null
  // pointers when collection is off — no clock reads on the hot path).
  obs::ScopedTimer alloc_timer(obs::timer_if_enabled("auction/pre_allocate"));
  obs::Summary* pricing_summary = obs::timer_if_enabled("auction/pricing");

  const double* const quality = queue.quality.data();
  const double* const density = queue.density.data();
  const std::size_t queue_size = queue.size();

  // Line 3: tasks in ascending order of quality threshold.
  std::vector<std::size_t>& task_order = arena().task_order;
  task_order.resize(tasks.size());
  std::iota(task_order.begin(), task_order.end(), std::size_t{0});
  std::sort(task_order.begin(), task_order.end(),
            [&](std::size_t a, std::size_t b) {
              if (tasks[a].quality_threshold != tasks[b].quality_threshold) {
                return tasks[a].quality_threshold < tasks[b].quality_threshold;
              }
              return tasks[a].id < tasks[b].id;
            });

  std::vector<int>& available = arena().available;
  available.assign(queue.frequency.begin(), queue.frequency.end());

  // Lines 5-14: pre-allocation.
  std::vector<PreAllocation> pre;
  pre.reserve(tasks.size());
  std::size_t uncoverable = 0;
  std::size_t unpriceable = 0;
  std::size_t winners_priced = 0;
  for (std::size_t task_index : task_order) {
    const double required = tasks[task_index].quality_threshold;

    // Line 6: smallest k such that available workers in the queue prefix
    // [0, k) have total estimated quality >= Q_j. Contiguous scan over the
    // quality/available arrays.
    PreAllocation p;
    p.task_index = task_index;
    double covered = 0.0;
    std::size_t k = 0;  // one past the last prefix position scanned
    while (k < queue_size && covered < required) {
      if (available[k] > 0) {
        covered += quality[k];
        p.winners.push_back(k);
      }
      ++k;
    }
    if (covered < required) {  // no k exists: task cannot be covered
      ++uncoverable;
      continue;
    }

    // Lines 9-11: critical-value payments.
    obs::ScopedTimer pricing_timer(pricing_summary);
    bool priceable = true;
    p.payments.reserve(p.winners.size());
    if (rule == PaymentRule::kPaperNextInQueue) {
      // Paper-literal: every winner priced from the (k+1)-th queue worker.
      if (k >= queue_size) {  // no reference worker
        ++unpriceable;
        continue;
      }
      const double ratio = density[k];
      for (std::size_t widx : p.winners) {
        p.payments.push_back(ratio * quality[widx]);
      }
    } else {
      // Critical value: winner i stays a winner of this task exactly while
      // his ratio exceeds that of the worker at which coverage of Q_j
      // completes in the queue *without* i (under the current availability
      // state). Walk the queue skipping i to find that completion worker;
      // its cost density is i's payment ratio. The per-winner walks only
      // read the quality/available arrays and write disjoint payment
      // slots, so for large instances they shard across the pool with
      // bit-identical results.
      p.payments.assign(p.winners.size(), 0.0);
      std::atomic<bool> all_priced{true};
      auto price_winner = [&](std::size_t w) {
        const std::size_t widx = p.winners[w];
        double cumulative = 0.0;
        std::size_t pos = 0;
        while (pos < queue_size) {
          if (pos != widx && available[pos] > 0) {
            cumulative += quality[pos];
            if (cumulative >= required) break;
          }
          ++pos;
        }
        if (pos >= queue_size) {
          // No critical worker exists for this winner.
          all_priced.store(false, std::memory_order_relaxed);
          return;
        }
        p.payments[w] = density[pos] * quality[widx];
      };
      if (p.winners.size() > 1 &&
          p.winners.size() * queue_size >= kParallelPricingWork) {
        util::parallel_for(util::shared_pool(), p.winners.size(),
                           price_winner);
      } else {
        for (std::size_t w = 0; w < p.winners.size(); ++w) price_winner(w);
      }
      priceable = all_priced.load(std::memory_order_relaxed);
    }
    if (!priceable) {  // drop the task; frequencies untouched
      ++unpriceable;
      continue;
    }

    winners_priced += p.winners.size();
    for (std::size_t w = 0; w < p.winners.size(); ++w) {
      p.total_payment += p.payments[w];
      --available[p.winners[w]];
    }
    pre.push_back(std::move(p));
  }
  if (obs::enabled()) {
    obs::MetricsRegistry& reg = obs::registry();
    reg.counter("auction/tasks_uncoverable").add(uncoverable);
    reg.counter("auction/tasks_unpriceable").add(unpriceable);
    reg.counter("auction/winners_priced").add(winners_priced);
  }

  // Stage 2 prerequisite (line 16): ascending order of P_j, ties by id.
  std::sort(pre.begin(), pre.end(),
            [&](const PreAllocation& a, const PreAllocation& b) {
              if (a.total_payment != b.total_payment) {
                return a.total_payment < b.total_payment;
              }
              return tasks[a.task_index].id < tasks[b.task_index].id;
            });
  return pre;
}

void commit(const PreAllocation& pre, const RankingQueue& queue,
            std::span<const Task> tasks, AllocationResult& result) {
  result.selected_tasks.push_back(tasks[pre.task_index].id);
  for (std::size_t w = 0; w < pre.winners.size(); ++w) {
    result.assignments.push_back({queue.ids[pre.winners[w]],
                                  tasks[pre.task_index].id, pre.payments[w]});
  }
}

}  // namespace melody::auction::internal
