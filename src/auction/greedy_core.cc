#include "auction/greedy_core.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "obs/metrics.h"
#include "util/parallel_for.h"

namespace melody::auction::internal {

namespace {

// Below these sizes the fork-join overhead exceeds the loop body; the
// serial path is also the reference the determinism tests compare against.
constexpr std::size_t kParallelSortThreshold = 4096;
constexpr std::size_t kParallelPricingWork = std::size_t{1} << 17;

}  // namespace

std::vector<const WorkerProfile*> build_ranking_queue(
    std::span<const WorkerProfile> workers, const AuctionConfig& config) {
  // Line 1: qualification filter W <- {i : Theta_m <= mu_i <= Theta_M,
  // C_m <= c_i <= C_M}. Workers with non-positive cost, quality, or
  // frequency can never participate meaningfully and are excluded.
  std::vector<const WorkerProfile*> queue;
  queue.reserve(workers.size());
  for (const auto& w : workers) {
    if (w.bid.cost > 0.0 && w.bid.frequency > 0 && w.estimated_quality > 0.0 &&
        config.qualifies(w)) {
      queue.push_back(&w);
    }
  }
  // Line 2: ranking queue, descending estimated quality per unit cost.
  // Ties broken by worker id, which makes the order total — so the
  // block-sort-and-merge parallel path (taken for large N) reproduces the
  // serial order exactly.
  obs::ScopedTimer sort_timer(obs::timer_if_enabled("auction/rank_sort"));
  if (obs::enabled()) {
    obs::registry().counter("auction/qualified_workers").add(queue.size());
  }
  util::parallel_sort(util::shared_pool(), queue.begin(), queue.end(),
                      [](const WorkerProfile* a, const WorkerProfile* b) {
                        const double ra = a->estimated_quality / a->bid.cost;
                        const double rb = b->estimated_quality / b->bid.cost;
                        if (ra != rb) return ra > rb;
                        return a->id < b->id;
                      },
                      kParallelSortThreshold);
  return queue;
}

std::vector<PreAllocation> pre_allocate(
    const std::vector<const WorkerProfile*>& queue, std::span<const Task> tasks,
    PaymentRule rule) {
  // The allocation-loop timer covers the whole stage-1 pass; the pricing
  // timer isolates the per-task critical-value walks inside it (null
  // pointers when collection is off — no clock reads on the hot path).
  obs::ScopedTimer alloc_timer(obs::timer_if_enabled("auction/pre_allocate"));
  obs::Summary* pricing_summary = obs::timer_if_enabled("auction/pricing");

  auto ratio_of = [&](std::size_t pos) {
    return queue[pos]->bid.cost / queue[pos]->estimated_quality;
  };

  // Line 3: tasks in ascending order of quality threshold.
  std::vector<std::size_t> task_order(tasks.size());
  std::iota(task_order.begin(), task_order.end(), std::size_t{0});
  std::sort(task_order.begin(), task_order.end(),
            [&](std::size_t a, std::size_t b) {
              if (tasks[a].quality_threshold != tasks[b].quality_threshold) {
                return tasks[a].quality_threshold < tasks[b].quality_threshold;
              }
              return tasks[a].id < tasks[b].id;
            });

  std::vector<int> available(queue.size());
  for (std::size_t i = 0; i < queue.size(); ++i) {
    available[i] = queue[i]->bid.frequency;
  }

  // Lines 5-14: pre-allocation.
  std::vector<PreAllocation> pre;
  pre.reserve(tasks.size());
  std::size_t uncoverable = 0;
  std::size_t unpriceable = 0;
  std::size_t winners_priced = 0;
  for (std::size_t task_index : task_order) {
    const double required = tasks[task_index].quality_threshold;

    // Line 6: smallest k such that available workers in the queue prefix
    // [0, k) have total estimated quality >= Q_j.
    PreAllocation p;
    p.task_index = task_index;
    double covered = 0.0;
    std::size_t k = 0;  // one past the last prefix position scanned
    while (k < queue.size() && covered < required) {
      if (available[k] > 0) {
        covered += queue[k]->estimated_quality;
        p.winners.push_back(k);
      }
      ++k;
    }
    if (covered < required) {  // no k exists: task cannot be covered
      ++uncoverable;
      continue;
    }

    // Lines 9-11: critical-value payments.
    obs::ScopedTimer pricing_timer(pricing_summary);
    bool priceable = true;
    p.payments.reserve(p.winners.size());
    if (rule == PaymentRule::kPaperNextInQueue) {
      // Paper-literal: every winner priced from the (k+1)-th queue worker.
      if (k >= queue.size()) {  // no reference worker
        ++unpriceable;
        continue;
      }
      const double ratio = ratio_of(k);
      for (std::size_t widx : p.winners) {
        p.payments.push_back(ratio * queue[widx]->estimated_quality);
      }
    } else {
      // Critical value: winner i stays a winner of this task exactly while
      // his ratio exceeds that of the worker at which coverage of Q_j
      // completes in the queue *without* i (under the current availability
      // state). Walk the queue skipping i to find that completion worker;
      // its cost density is i's payment ratio. The per-winner walks only
      // read `queue` and `available` and write disjoint payment slots, so
      // for large instances they shard across the pool with bit-identical
      // results.
      p.payments.assign(p.winners.size(), 0.0);
      std::atomic<bool> all_priced{true};
      auto price_winner = [&](std::size_t w) {
        const std::size_t widx = p.winners[w];
        double cumulative = 0.0;
        std::size_t pos = 0;
        while (pos < queue.size()) {
          if (pos != widx && available[pos] > 0) {
            cumulative += queue[pos]->estimated_quality;
            if (cumulative >= required) break;
          }
          ++pos;
        }
        if (pos >= queue.size()) {
          // No critical worker exists for this winner.
          all_priced.store(false, std::memory_order_relaxed);
          return;
        }
        p.payments[w] = ratio_of(pos) * queue[widx]->estimated_quality;
      };
      if (p.winners.size() > 1 &&
          p.winners.size() * queue.size() >= kParallelPricingWork) {
        util::parallel_for(util::shared_pool(), p.winners.size(),
                           price_winner);
      } else {
        for (std::size_t w = 0; w < p.winners.size(); ++w) price_winner(w);
      }
      priceable = all_priced.load(std::memory_order_relaxed);
    }
    if (!priceable) {  // drop the task; frequencies untouched
      ++unpriceable;
      continue;
    }

    winners_priced += p.winners.size();
    for (std::size_t w = 0; w < p.winners.size(); ++w) {
      p.total_payment += p.payments[w];
      --available[p.winners[w]];
    }
    pre.push_back(std::move(p));
  }
  if (obs::enabled()) {
    obs::MetricsRegistry& reg = obs::registry();
    reg.counter("auction/tasks_uncoverable").add(uncoverable);
    reg.counter("auction/tasks_unpriceable").add(unpriceable);
    reg.counter("auction/winners_priced").add(winners_priced);
  }

  // Stage 2 prerequisite (line 16): ascending order of P_j, ties by id.
  std::sort(pre.begin(), pre.end(),
            [&](const PreAllocation& a, const PreAllocation& b) {
              if (a.total_payment != b.total_payment) {
                return a.total_payment < b.total_payment;
              }
              return tasks[a.task_index].id < tasks[b.task_index].id;
            });
  return pre;
}

void commit(const PreAllocation& pre,
            const std::vector<const WorkerProfile*>& queue,
            std::span<const Task> tasks, AllocationResult& result) {
  result.selected_tasks.push_back(tasks[pre.task_index].id);
  for (std::size_t w = 0; w < pre.winners.size(); ++w) {
    result.assignments.push_back({queue[pre.winners[w]]->id,
                                  tasks[pre.task_index].id, pre.payments[w]});
  }
}

}  // namespace melody::auction::internal
