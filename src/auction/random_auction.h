// RANDOM baseline mechanism from Section 7.1 of the paper: tasks are taken
// in random order and workers are drawn uniformly at random per task, with
// the lowest-ranked drawn worker acting as the critical-payment loser.
#pragma once

#include "auction/mechanism.h"
#include "util/rng.h"

namespace melody::auction {

/// For each task (visited in random order) RANDOM draws qualified workers
/// uniformly without replacement until the drawn set, minus its member with
/// the lowest quality-per-cost ratio, covers Q_j. Those k workers win and
/// each is paid mu_i * c_{k+1} / mu_{k+1}, where (k+1) denotes the excluded
/// lowest-ratio draw; tasks are committed in the random order until the
/// first task the remaining budget cannot cover (a naive baseline makes no
/// attempt to skip expensive tasks). The
/// mechanism is truthful (Appendix D of the paper) because a worker's
/// payment never depends on his own bid.
class RandomAuction final : public Mechanism {
 public:
  explicit RandomAuction(std::uint64_t seed = 1) : rng_(seed) {}

  AllocationResult run(const AuctionContext& context) override;

  std::string name() const override { return "RANDOM"; }

 private:
  util::Rng rng_;
};

}  // namespace melody::auction
