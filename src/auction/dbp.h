// Dual bin packing (bin covering): pack items into a maximum number of bins
// so that each bin's content sums to at least the capacity C.
//
// The SRA problem's NP-hardness proof (Theorem 1) reduces from this problem,
// and Lemma 4's constant beta comes from the classical greedy analyses of
// Csirik et al. (1999). We implement:
//   * next-fit-decreasing greedy (2/3-competitive on the number of bins),
//   * an exact branch-and-bound for small instances (used in tests to
//     measure the greedy's empirical ratio and to cross-check exact_sra).
#pragma once

#include <cstddef>
#include <span>

namespace melody::auction {

/// Greedy bin covering: sort items descending, fill the current bin until it
/// reaches capacity, then open a new one. Returns the number of covered bins.
std::size_t dbp_greedy(std::span<const double> items, double capacity);

inline constexpr std::size_t kDbpExactMaxItems = 16;

/// Exact maximum number of covered bins by branch and bound.
/// Throws std::invalid_argument for more than kDbpExactMaxItems items.
std::size_t dbp_exact(std::span<const double> items, double capacity);

/// Trivial upper bound: floor(sum(items) / capacity).
std::size_t dbp_upper_bound(std::span<const double> items, double capacity);

}  // namespace melody::auction
