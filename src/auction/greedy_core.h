// Internal shared machinery of the MELODY greedy mechanism (Algorithm 1's
// qualification, ranking, pre-allocation and pricing stages), used by both
// the primal budgeted auction (melody_auction) and the dual
// minimize-budget-for-target-utility form (dual_sra, paper footnote 6).
//
// The ranking queue is structure-of-arrays: the coverage scans and pricing
// walks (the O(N M) inner loops) read one contiguous double array each
// instead of chasing WorkerProfile pointers, and the rank sort compares
// precomputed ratios instead of dividing twice per comparison. The
// arithmetic is unchanged — ratio = quality / cost and
// density = cost / quality are the exact divisions the AoS code performed
// in place, computed once — so selection, pricing, and output order are
// bit-identical to the scalar layout (locked by test_soa_equivalence).
//
// Not part of the public API surface; include only from auction/*.cc.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "auction/bid_book.h"
#include "auction/melody_auction.h"
#include "auction/types.h"

namespace melody::auction::internal {

/// The ranking queue in structure-of-arrays form: position p in every array
/// describes the p-th ranked qualified worker. Owns its storage (per-call
/// scratch lives in a thread-local arena instead; see greedy_core.cc).
struct RankingQueue {
  std::vector<WorkerId> ids;
  std::vector<double> quality;   // mu-hat_i
  std::vector<double> density;   // c_i / mu-hat_i — the pricing ratio
  std::vector<int> frequency;    // n_i

  std::size_t size() const noexcept { return ids.size(); }
  bool empty() const noexcept { return ids.empty(); }
};

/// One pre-allocated task: the winners chosen in stage 1 and the total
/// pre-payment P_j the requester would owe if the task is committed.
struct PreAllocation {
  std::size_t task_index = 0;
  std::vector<std::size_t> winners;  // positions in the ranking queue
  std::vector<double> payments;      // parallel to winners
  double total_payment = 0.0;        // P_j
};

/// Algorithm 1 lines 1-2: qualification filter + ranking queue (descending
/// estimated quality per unit cost, ties by id).
RankingQueue build_ranking_queue(std::span<const WorkerProfile> workers,
                                 const AuctionConfig& config);

/// Incremental form of lines 1-2: materialize the ranking queue by walking
/// the persistent bid-book ladder, applying the same qualification filter.
/// The ladder's (ratio desc, id asc) order is the rank sort's total order,
/// so the resulting queue is bit-identical to the rebuild path's — in O(N)
/// with no sort, since every insert/update already re-ranked its entry.
RankingQueue build_ranking_queue(const BidBook& book,
                                 const AuctionConfig& config);

/// Algorithm 1 lines 3-14: pre-allocate every task over the ranking queue,
/// consuming worker frequency, pricing winners per the payment rule, and
/// dropping unpriceable tasks. The result is sorted by ascending P_j
/// (ties by task id), ready for stage-2 commitment.
std::vector<PreAllocation> pre_allocate(const RankingQueue& queue,
                                        std::span<const Task> tasks,
                                        PaymentRule rule);

/// Append one pre-allocation's assignments to a result.
void commit(const PreAllocation& pre, const RankingQueue& queue,
            std::span<const Task> tasks, AllocationResult& result);

}  // namespace melody::auction::internal
