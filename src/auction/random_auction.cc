#include "auction/random_auction.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"

namespace melody::auction {

AllocationResult RandomAuction::run(const AuctionContext& context) {
  obs::ScopedTimer run_timer(obs::timer_if_enabled("auction/run"));
  // Full-rebuild adapter: book-only contexts are materialized by id, which
  // is the span order platforms submit, so the draw sequence is unchanged.
  std::vector<WorkerProfile> book_storage;
  const std::span<const WorkerProfile> workers =
      resolve_workers(context, book_storage);
  const std::span<const Task> tasks = context.tasks;
  const AuctionConfig& config = context.config;

  std::vector<const WorkerProfile*> qualified;
  for (const auto& w : workers) {
    if (w.bid.cost > 0.0 && w.bid.frequency > 0 && w.estimated_quality > 0.0 &&
        config.qualifies(w)) {
      qualified.push_back(&w);
    }
  }

  std::vector<int> available(qualified.size());
  for (std::size_t i = 0; i < qualified.size(); ++i) {
    available[i] = qualified[i]->bid.frequency;
  }
  auto ratio = [&](std::size_t i) {
    return qualified[i]->estimated_quality / qualified[i]->bid.cost;
  };

  std::vector<std::size_t> task_order(tasks.size());
  std::iota(task_order.begin(), task_order.end(), std::size_t{0});
  rng_.shuffle(task_order);

  AllocationResult result;
  double remaining = config.budget;
  for (std::size_t task_index : task_order) {
    const double required = tasks[task_index].quality_threshold;

    // Draw workers uniformly (without replacement among those with spare
    // frequency) until the drawn set minus its lowest-ratio member covers Q.
    std::vector<std::size_t> pool;
    for (std::size_t i = 0; i < qualified.size(); ++i) {
      if (available[i] > 0) pool.push_back(i);
    }
    std::vector<std::size_t> drawn;
    double drawn_quality = 0.0;
    std::size_t loser = 0;  // index into `drawn` of lowest-ratio member
    bool covered = false;
    while (!pool.empty()) {
      const std::size_t pick = rng_.bounded(pool.size());
      const std::size_t widx = pool[pick];
      pool[pick] = pool.back();
      pool.pop_back();
      drawn.push_back(widx);
      drawn_quality += qualified[widx]->estimated_quality;
      if (drawn.size() < 2) continue;
      loser = 0;
      for (std::size_t d = 1; d < drawn.size(); ++d) {
        if (ratio(drawn[d]) < ratio(drawn[loser])) loser = d;
      }
      if (drawn_quality - qualified[drawn[loser]]->estimated_quality >=
          required) {
        covered = true;
        break;
      }
    }
    if (!covered) continue;

    const std::size_t loser_widx = drawn[loser];
    const double price_ratio =
        qualified[loser_widx]->bid.cost / qualified[loser_widx]->estimated_quality;
    double total_payment = 0.0;
    for (std::size_t d = 0; d < drawn.size(); ++d) {
      if (d == loser) continue;
      total_payment += price_ratio * qualified[drawn[d]]->estimated_quality;
    }
    if (total_payment > remaining) break;  // budget exhausted: stop selecting

    remaining -= total_payment;
    result.selected_tasks.push_back(tasks[task_index].id);
    for (std::size_t d = 0; d < drawn.size(); ++d) {
      if (d == loser) continue;
      const std::size_t widx = drawn[d];
      --available[widx];
      result.assignments.push_back(
          {qualified[widx]->id, tasks[task_index].id,
           price_ratio * qualified[widx]->estimated_quality});
    }
  }
  context.emit("auction/result",
               {{"mechanism", "RANDOM"},
                {"workers", workers.size()},
                {"tasks", tasks.size()},
                {"qualified", qualified.size()},
                {"selected_tasks", result.selected_tasks.size()},
                {"assignments", result.assignments.size()},
                {"total_payment", result.total_payment()}});
  return result;
}

}  // namespace melody::auction
