#include "auction/bid_book.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "auction/mechanism.h"

namespace melody::auction {

namespace {

constexpr std::uint32_t kBookMagic = 0x4D4C4442u;  // "MLDB"
constexpr std::uint32_t kBookVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("bid book blob truncated");
  return value;
}

std::uint64_t bits_of(double d) noexcept {
  return std::bit_cast<std::uint64_t>(d);
}

}  // namespace

double BidBook::ladder_ratio(double quality, double cost) noexcept {
  // Bids that can never pass the qualification filter (non-positive or
  // non-finite quality/cost) sink to the ladder tail under a well-defined
  // key instead of risking a NaN quotient breaking the strict weak order.
  if (!(quality > 0.0) || !(cost > 0.0) || !std::isfinite(quality) ||
      !std::isfinite(cost)) {
    return -std::numeric_limits<double>::infinity();
  }
  const double ratio = quality / cost;  // same operands as the rank sort
  if (std::isnan(ratio)) return -std::numeric_limits<double>::infinity();
  return ratio;
}

BidBook::Slot BidBook::slot_of(WorkerId id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? kNone : it->second;
}

std::size_t BidBook::rank_of(WorkerId id) const {
  const Slot slot = slot_of(id);
  if (slot == kNone) throw std::out_of_range("rank_of: unknown worker");
  if (!rank_valid_) {
    materialized();
    rank_.resize(id_.size());
    for (std::size_t p = 0; p < mat_.slots.size(); ++p) {
      rank_[static_cast<std::size_t>(mat_.slots[p])] =
          static_cast<std::uint32_t>(p);
    }
    rank_valid_ = true;
  }
  return rank_[static_cast<std::size_t>(slot)];
}

BidBook::Slot BidBook::allocate_slot() {
  if (!free_.empty()) {
    const Slot slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const Slot slot = static_cast<Slot>(id_.size());
  id_.push_back(-1);
  quality_.push_back(0.0);
  cost_.push_back(0.0);
  frequency_.push_back(0);
  ratio_.push_back(0.0);
  prev_.push_back(kNone);
  next_.push_back(kNone);
  return slot;
}

bool BidBook::upsert(const WorkerProfile& profile) {
  const double ratio = ladder_ratio(profile.estimated_quality,
                                    profile.bid.cost);
  const auto existing = index_.find(profile.id);
  if (existing != index_.end()) {
    const Slot slot = existing->second;
    const auto i = static_cast<std::size_t>(slot);
    if (bits_of(ratio_[i]) == bits_of(ratio)) {
      // Sort key unchanged: update values in place, ladder order (links,
      // cached ranks) stays valid. The materialized image still holds the
      // old values, so the slot is dirty regardless.
      quality_[i] = profile.estimated_quality;
      cost_[i] = profile.bid.cost;
      frequency_[i] = profile.bid.frequency;
      mark_dirty(slot);
      return false;
    }
    // Key changed: O(1) — write the slot, mark it dirty, and let the next
    // ordered read repair the image (merge), links, and ranks lazily.
    quality_[i] = profile.estimated_quality;
    cost_[i] = profile.bid.cost;
    frequency_[i] = profile.bid.frequency;
    ratio_[i] = ratio;
    links_valid_ = false;
    rank_valid_ = false;
    mark_dirty(slot);
    return false;
  }

  const Slot slot = allocate_slot();
  const auto i = static_cast<std::size_t>(slot);
  id_[i] = profile.id;
  quality_[i] = profile.estimated_quality;
  cost_[i] = profile.bid.cost;
  frequency_[i] = profile.bid.frequency;
  ratio_[i] = ratio;
  index_.emplace(profile.id, slot);
  links_valid_ = false;
  rank_valid_ = false;
  mark_dirty(slot);
  return true;
}

bool BidBook::erase(WorkerId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  const Slot slot = it->second;
  const auto i = static_cast<std::size_t>(slot);
  mark_dirty(slot);  // before the id is cleared: the mark is by slot
  index_.erase(it);
  id_[i] = -1;
  free_.push_back(slot);
  links_valid_ = false;
  rank_valid_ = false;
  return true;
}

void BidBook::mark_dirty(Slot slot) {
  // Without a live image there is nothing to repair: the next
  // materialization walks the ladder from scratch.
  if (!mat_valid_) return;
  const auto i = static_cast<std::size_t>(slot);
  if (mat_dirty_mark_.size() < id_.size()) {
    mat_dirty_mark_.resize(id_.size(), 0);
  }
  if (mat_dirty_mark_[i]) return;
  mat_dirty_mark_[i] = 1;
  mat_dirty_.push_back(slot);
}

void BidBook::materialize_full() const {
  // From-scratch rebuild: gather the live slots and sort them by the
  // ladder key. (ratio desc, id asc) is a total order over unique ids, so
  // the result is the exact ladder permutation regardless of history.
  const std::size_t n = size();
  std::vector<Slot> slots;
  slots.reserve(n);
  for (std::size_t i = 0; i < id_.size(); ++i) {
    if (id_[i] != -1) slots.push_back(static_cast<Slot>(i));
  }
  const KeyLess less;
  std::sort(slots.begin(), slots.end(), [&](Slot a, Slot b) {
    return less(key_at(a), key_at(b));
  });
  mat_.resize(n);
  for (std::size_t w = 0; w < n; ++w) {
    const Slot s = slots[w];
    const auto i = static_cast<std::size_t>(s);
    mat_.slots[w] = s;
    mat_.ids[w] = id_[i];
    mat_.quality[w] = quality_[i];
    mat_.cost[w] = cost_[i];
    mat_.frequency[w] = frequency_[i];
    mat_.ratio[w] = ratio_[i];
  }
  for (const Slot s : mat_dirty_) {
    mat_dirty_mark_[static_cast<std::size_t>(s)] = 0;
  }
  mat_dirty_.clear();
  mat_dirty_mark_.resize(id_.size(), 0);
  mat_valid_ = true;
}

void BidBook::materialize_merge() const {
  // The slots dirtied since the image was taken, keyed by their *current*
  // ladder position; a dirty slot on the free list (erased, not reused)
  // simply drops out.
  struct Pending {
    Key key;
    Slot slot;
  };
  std::vector<Pending> live;
  live.reserve(mat_dirty_.size());
  for (const Slot s : mat_dirty_) {
    const auto i = static_cast<std::size_t>(s);
    if (id_[i] != -1) live.push_back({Key{ratio_[i], id_[i]}, s});
  }
  const KeyLess less;
  std::sort(live.begin(), live.end(), [&](const Pending& a, const Pending& b) {
    return less(a.key, b.key);
  });

  // One streaming pass: the old image minus its dirty slots, merged with
  // the re-keyed dirty slots. Keys are unique (ids are), and a kept old
  // entry's slot content is untouched since the image was taken (any
  // mutation would have marked it), so copying image values is exact.
  const std::size_t n = size();
  LadderImage& out = mat_scratch_;
  out.resize(n);
  std::size_t w = 0;
  const auto emit_live = [&](const Pending& p) {
    const auto i = static_cast<std::size_t>(p.slot);
    out.slots[w] = p.slot;
    out.ids[w] = id_[i];
    out.quality[w] = quality_[i];
    out.cost[w] = cost_[i];
    out.frequency[w] = frequency_[i];
    out.ratio[w] = ratio_[i];
    ++w;
  };
  std::size_t b = 0;
  const std::size_t old_n = mat_.slots.size();
  for (std::size_t a = 0; a < old_n; ++a) {
    const Slot s = mat_.slots[a];
    if (mat_dirty_mark_[static_cast<std::size_t>(s)]) continue;  // stale
    const Key old_key{mat_.ratio[a], mat_.ids[a]};
    while (b < live.size() && less(live[b].key, old_key)) emit_live(live[b++]);
    out.slots[w] = s;
    out.ids[w] = mat_.ids[a];
    out.quality[w] = mat_.quality[a];
    out.cost[w] = mat_.cost[a];
    out.frequency[w] = mat_.frequency[a];
    out.ratio[w] = mat_.ratio[a];
    ++w;
  }
  while (b < live.size()) emit_live(live[b++]);
  std::swap(mat_, mat_scratch_);
  for (const Slot s : mat_dirty_) {
    mat_dirty_mark_[static_cast<std::size_t>(s)] = 0;
  }
  mat_dirty_.clear();
}

BidBook::LadderView BidBook::materialized() const {
  if (!mat_valid_ || mat_dirty_.size() * 4 >= size() + 4) {
    // No image yet, or so much churn that merging would touch most of the
    // book anyway: one from-scratch sort.
    materialize_full();
  } else if (!mat_dirty_.empty()) {
    materialize_merge();
  }
  return {mat_.ids, mat_.quality, mat_.cost, mat_.frequency, mat_.ratio};
}

void BidBook::ensure_links() const {
  if (links_valid_) return;
  materialized();  // repair the image; the links are derived from it
  prev_.resize(id_.size(), kNone);
  next_.resize(id_.size(), kNone);
  const std::size_t n = mat_.slots.size();
  Slot last = kNone;
  for (std::size_t p = 0; p < n; ++p) {
    const Slot s = mat_.slots[p];
    const auto i = static_cast<std::size_t>(s);
    prev_[i] = last;
    if (last != kNone) next_[static_cast<std::size_t>(last)] = s;
    last = s;
  }
  if (last != kNone) next_[static_cast<std::size_t>(last)] = kNone;
  head_ = n == 0 ? kNone : mat_.slots.front();
  tail_ = last;
  links_valid_ = true;
}

void BidBook::apply(std::span<const BidDelta> deltas) {
  for (const BidDelta& delta : deltas) {
    if (delta.kind == BidDelta::Kind::kUpsert) {
      upsert(delta.profile);
    } else {
      erase(delta.profile.id);
    }
  }
}

void BidBook::clear() {
  id_.clear();
  quality_.clear();
  cost_.clear();
  frequency_.clear();
  ratio_.clear();
  prev_.clear();
  next_.clear();
  free_.clear();
  head_ = kNone;
  tail_ = kNone;
  links_valid_ = true;  // trivially: the empty ladder has no links
  index_.clear();
  rank_.clear();
  rank_valid_ = false;
  seen_.clear();
  seen_epoch_ = 0;
  mat_ = {};
  mat_scratch_ = {};
  mat_valid_ = false;
  mat_dirty_.clear();
  mat_dirty_mark_.clear();
}

void BidBook::bulk_load(std::span<const WorkerProfile> profiles) {
  clear();
  for (const WorkerProfile& p : profiles) {
    if (index_.contains(p.id)) {
      throw std::invalid_argument("bulk_load: duplicate worker id");
    }
    upsert(p);
  }
}

void BidBook::diff(std::span<const WorkerProfile> target,
                   std::vector<BidDelta>& out) const {
  out.clear();
  seen_.resize(id_.size(), 0);
  if (++seen_epoch_ == 0) {  // epoch wrap: reset the scratch once
    std::fill(seen_.begin(), seen_.end(), 0u);
    seen_epoch_ = 1;
  }
  for (const WorkerProfile& p : target) {
    const auto it = index_.find(p.id);
    if (it == index_.end()) {
      out.push_back({BidDelta::Kind::kUpsert, p});
      continue;
    }
    const auto i = static_cast<std::size_t>(it->second);
    seen_[i] = seen_epoch_;
    if (bits_of(quality_[i]) != bits_of(p.estimated_quality) ||
        bits_of(cost_[i]) != bits_of(p.bid.cost) ||
        frequency_[i] != p.bid.frequency) {
      out.push_back({BidDelta::Kind::kUpsert, p});
    }
  }
  materialized();  // withdrawals are emitted in ladder order
  for (const Slot s : mat_.slots) {
    const auto i = static_cast<std::size_t>(s);
    if (seen_[i] != seen_epoch_) {
      out.push_back({BidDelta::Kind::kWithdraw, WorkerProfile{id_[i], {}, 0.0}});
    }
  }
}

std::vector<WorkerProfile> BidBook::snapshot_by_id() const {
  std::vector<WorkerProfile> profiles;
  profiles.reserve(size());
  materialized();
  for (const Slot s : mat_.slots) {
    profiles.push_back(profile_at(s));
  }
  std::sort(profiles.begin(), profiles.end(),
            [](const WorkerProfile& a, const WorkerProfile& b) {
              return a.id < b.id;
            });
  return profiles;
}

std::string BidBook::check_links() const {
  std::ostringstream bad;
  const std::size_t n = size();
  ensure_links();  // the sweep validates the repaired structures
  if ((head_ == kNone) != (n == 0) || (tail_ == kNone) != (n == 0)) {
    bad << "head/tail emptiness disagrees with size " << n;
    return bad.str();
  }
  std::size_t walked = 0;
  Slot last = kNone;
  const KeyLess less;
  for (Slot s = head_; s != kNone; s = next(s)) {
    if (++walked > n) {
      bad << "ladder walk exceeded size " << n << ": cycle";
      return bad.str();
    }
    const auto i = static_cast<std::size_t>(s);
    if (prev_[i] != last) {
      bad << "slot " << s << " prev link " << prev_[i] << " != " << last;
      return bad.str();
    }
    if (last != kNone && !less(key_at(last), key_at(s))) {
      bad << "ladder order violated between slots " << last << " and " << s;
      return bad.str();
    }
    const auto idx = index_.find(id_[i]);
    if (idx == index_.end() || idx->second != s) {
      bad << "index disagrees for worker " << id_[i] << " at slot " << s;
      return bad.str();
    }
    if (rank_valid_ && rank_[i] != walked - 1) {
      bad << "stale rank cache for worker " << id_[i] << ": " << rank_[i]
          << " != " << walked - 1;
      return bad.str();
    }
    last = s;
  }
  if (walked != n) {
    bad << "ladder walk covered " << walked << " of " << n << " entries";
    return bad.str();
  }
  if (tail_ != last) {
    bad << "tail " << tail_ << " != last walked slot " << last;
    return bad.str();
  }
  if (free_.size() + n != id_.size()) {
    bad << "free list size " << free_.size() << " + live " << n
        << " != arena " << id_.size();
    return bad.str();
  }
  // The materialized image (repaired by merge if dirty) must be the exact
  // ladder sequence — this is the contract build_ranking_queue relies on.
  const LadderView view = materialized();
  if (view.size() != n) {
    bad << "materialized view size " << view.size() << " != book size " << n;
    return bad.str();
  }
  std::size_t p = 0;
  for (Slot s = head_; s != kNone; s = next(s), ++p) {
    const auto i = static_cast<std::size_t>(s);
    if (mat_.slots[p] != s || view.ids[p] != id_[i] ||
        bits_of(view.quality[p]) != bits_of(quality_[i]) ||
        bits_of(view.cost[p]) != bits_of(cost_[i]) ||
        view.frequency[p] != frequency_[i] ||
        bits_of(view.ratio[p]) != bits_of(ratio_[i])) {
      bad << "materialized view disagrees with the ladder at position " << p;
      return bad.str();
    }
  }
  return {};
}

std::uint64_t BidBook::content_digest() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  const LadderView view = materialized();
  for (std::size_t p = 0; p < view.size(); ++p) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(view.ids[p])));
    mix(bits_of(view.quality[p]));
    mix(bits_of(view.cost[p]));
    mix(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(view.frequency[p])));
  }
  return h;
}

void BidBook::save(std::ostream& out) const {
  write_pod(out, kBookMagic);
  write_pod(out, kBookVersion);
  write_pod(out, static_cast<std::uint64_t>(size()));
  const LadderView view = materialized();
  for (std::size_t p = 0; p < view.size(); ++p) {
    write_pod(out, view.ids[p]);
    write_pod(out, view.quality[p]);
    write_pod(out, view.cost[p]);
    write_pod(out, view.frequency[p]);
  }
}

void BidBook::load(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kBookMagic) {
    throw std::runtime_error("bid book blob: bad magic");
  }
  if (read_pod<std::uint32_t>(in) != kBookVersion) {
    throw std::runtime_error("bid book blob: unsupported version");
  }
  const auto count = read_pod<std::uint64_t>(in);
  clear();
  const KeyLess less;
  bool have_last = false;
  Key last_key{};
  for (std::uint64_t k = 0; k < count; ++k) {
    WorkerProfile p;
    p.id = read_pod<WorkerId>(in);
    p.estimated_quality = read_pod<double>(in);
    p.bid.cost = read_pod<double>(in);
    p.bid.frequency = read_pod<int>(in);
    const Key key{ladder_ratio(p.estimated_quality, p.bid.cost), p.id};
    if (have_last && !less(last_key, key)) {
      throw std::runtime_error("bid book blob: ladder out of order");
    }
    if (index_.contains(p.id)) {
      throw std::runtime_error("bid book blob: duplicate worker id");
    }
    last_key = key;
    have_last = true;
    upsert(p);
  }
}

std::span<const WorkerProfile> resolve_workers(
    const AuctionContext& context, std::vector<WorkerProfile>& storage) {
  if (!context.workers.empty() || context.book == nullptr) {
    return context.workers;
  }
  storage = context.book->snapshot_by_id();
  return storage;
}

}  // namespace melody::auction
