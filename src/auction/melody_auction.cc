#include "auction/melody_auction.h"

#include "auction/greedy_core.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace melody::auction {

AllocationResult MelodyAuction::run(const AuctionContext& context) {
  obs::ScopedTimer run_timer(obs::timer_if_enabled("auction/run"));
  // Parent on the context's trace explicitly: a mechanism may run on a
  // thread the platform never installed a slot on (standalone tools).
  obs::ScopedSpan auction_span("auction/run", context.trace);
  auction_span.annotate("run", context.run);

  AllocationResult result;
  std::size_t qualified = 0;
  std::size_t priceable = 0;
  {
    // Incremental path: a context carrying a bid book gets its ranking
    // queue from the persistent ladder's materialized image
    // (merge-repaired, no sort); otherwise the classic filter-and-sort
    // rebuild. Both produce the identical permutation.
    obs::ScopedSpan rank_span("auction/rank");
    const auto queue =
        context.book != nullptr
            ? internal::build_ranking_queue(*context.book, context.config)
            : internal::build_ranking_queue(context.workers, context.config);
    const auto pre = internal::pre_allocate(queue, context.tasks, rule_);
    qualified = queue.size();
    priceable = pre.size();
    rank_span.annotate("qualified", static_cast<std::int64_t>(qualified));
    rank_span.annotate("priceable", static_cast<std::int64_t>(priceable));

    // Stage 2 (lines 15-21): commit tasks in ascending order of P_j while
    // the budget lasts.
    obs::ScopedTimer commit_timer(obs::timer_if_enabled("auction/commit"));
    obs::ScopedSpan commit_span("auction/commit");
    double remaining = context.config.budget;
    for (const auto& p : pre) {
      if (p.total_payment > remaining) break;
      remaining -= p.total_payment;
      internal::commit(p, queue, context.tasks, result);
    }
    commit_span.annotate(
        "selected", static_cast<std::int64_t>(result.selected_tasks.size()));
  }

  if (obs::enabled()) {
    static obs::Counter& auctions = obs::registry().counter("auction/runs");
    static obs::Counter& committed =
        obs::registry().counter("auction/tasks_committed");
    auctions.add();
    committed.add(result.selected_tasks.size());
  }
  context.emit("auction/result",
               {{"mechanism", "MELODY"},
                {"run", context.run},
                {"workers", context.book != nullptr && context.workers.empty()
                                ? context.book->size()
                                : context.workers.size()},
                {"dirty_bids", context.deltas.size()},
                {"tasks", context.tasks.size()},
                {"qualified", qualified},
                {"priceable_tasks", priceable},
                {"selected_tasks", result.selected_tasks.size()},
                {"assignments", result.assignments.size()},
                {"total_payment", result.total_payment()}});
  return result;
}

}  // namespace melody::auction
