#include "auction/melody_auction.h"

#include "auction/greedy_core.h"
#include "obs/metrics.h"

namespace melody::auction {

AllocationResult MelodyAuction::run(const AuctionContext& context) {
  obs::ScopedTimer run_timer(obs::timer_if_enabled("auction/run"));

  // Incremental path: a context carrying a bid book gets its ranking queue
  // from the persistent ladder's materialized image (merge-repaired, no
  // sort); otherwise the classic filter-and-sort rebuild. Both produce the
  // identical permutation.
  const auto queue =
      context.book != nullptr
          ? internal::build_ranking_queue(*context.book, context.config)
          : internal::build_ranking_queue(context.workers, context.config);
  const auto pre = internal::pre_allocate(queue, context.tasks, rule_);

  // Stage 2 (lines 15-21): commit tasks in ascending order of P_j while the
  // budget lasts.
  AllocationResult result;
  {
    obs::ScopedTimer commit_timer(obs::timer_if_enabled("auction/commit"));
    double remaining = context.config.budget;
    for (const auto& p : pre) {
      if (p.total_payment > remaining) break;
      remaining -= p.total_payment;
      internal::commit(p, queue, context.tasks, result);
    }
  }

  if (obs::enabled()) {
    static obs::Counter& auctions = obs::registry().counter("auction/runs");
    static obs::Counter& committed =
        obs::registry().counter("auction/tasks_committed");
    auctions.add();
    committed.add(result.selected_tasks.size());
  }
  context.emit("auction/result",
               {{"mechanism", "MELODY"},
                {"run", context.run},
                {"workers", context.book != nullptr && context.workers.empty()
                                ? context.book->size()
                                : context.workers.size()},
                {"dirty_bids", context.deltas.size()},
                {"tasks", context.tasks.size()},
                {"qualified", queue.size()},
                {"priceable_tasks", pre.size()},
                {"selected_tasks", result.selected_tasks.size()},
                {"assignments", result.assignments.size()},
                {"total_payment", result.total_payment()}});
  return result;
}

}  // namespace melody::auction
