#include "auction/melody_auction.h"

#include "auction/greedy_core.h"

namespace melody::auction {

AllocationResult MelodyAuction::run(std::span<const WorkerProfile> workers,
                                    std::span<const Task> tasks,
                                    const AuctionConfig& config) {
  const auto queue = internal::build_ranking_queue(workers, config);
  const auto pre = internal::pre_allocate(queue, tasks, rule_);

  // Stage 2 (lines 15-21): commit tasks in ascending order of P_j while the
  // budget lasts.
  AllocationResult result;
  double remaining = config.budget;
  for (const auto& p : pre) {
    if (p.total_payment > remaining) break;
    remaining -= p.total_payment;
    internal::commit(p, queue, tasks, result);
  }
  return result;
}

}  // namespace melody::auction
