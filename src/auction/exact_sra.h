// Exact (exponential-time) solver for the SRA problem with full knowledge
// of workers' true costs, used only in tests and ablation benches to measure
// the greedy mechanism's empirical approximation factor on small instances.
//
// The optimum modeled here matches the paper's OPT: the requester pays each
// selected worker exactly his cost, frequencies and quality thresholds are
// hard constraints, and the objective is the number of satisfied tasks.
#pragma once

#include <cstddef>
#include <span>

#include "auction/mechanism.h"
#include "auction/types.h"

namespace melody::auction {

/// Limits beyond which the exact solver refuses to run (the search is
/// exponential in both dimensions).
inline constexpr std::size_t kExactSraMaxWorkers = 12;
inline constexpr std::size_t kExactSraMaxTasks = 8;

/// Maximum number of tasks satisfiable within the budget, by exhaustive
/// branch-and-bound over minimal covering worker subsets per task.
/// Throws std::invalid_argument if the instance exceeds the size limits.
std::size_t exact_sra_optimum(std::span<const WorkerProfile> workers,
                              std::span<const Task> tasks,
                              const AuctionConfig& config);

/// AuctionContext form (API consolidation; the context's sink is unused).
std::size_t exact_sra_optimum(const AuctionContext& context);

}  // namespace melody::auction
