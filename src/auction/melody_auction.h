// MELODY's greedy mechanism for the Single Run Auction problem
// (Algorithm 1 of the paper): truthful, individually rational,
// budget-feasible, O(1)-competitive.
#pragma once

#include "auction/mechanism.h"

namespace melody::auction {

/// How a winner's critical-value payment ratio is chosen.
enum class PaymentRule {
  /// Myerson-style critical value (default): winner i of task j is paid
  /// mu_i * (c/mu) of the worker at which coverage of Q_j would complete
  /// if i were removed from the ranking queue. This is the exact bid
  /// threshold at which i stops winning the task, so no cost misreport can
  /// profit. It reduces to kPaperNextInQueue when removing i requires
  /// exactly one replacement worker (e.g. homogeneous qualities).
  kCriticalValue,
  /// The paper's literal rule: every winner is paid using the (k+1)-th
  /// ranking-queue worker's ratio. NOT exactly truthful once a misreport
  /// re-ranks the queue (a winner who inflates his cost slides down, drags
  /// the reference deeper, and is paid more); kept for the ablation bench.
  kPaperNextInQueue,
};

/// Algorithm 1. Two stages:
///   1. Pre-allocation: qualified workers are ranked by estimated quality
///      per unit cost mu_i / c_i; tasks are processed in ascending order of
///      Q_j; each task greedily takes the shortest prefix of still-available
///      workers whose qualities cover Q_j, and each winner is paid his
///      critical-value price (see PaymentRule).
///   2. Scheme determination: tasks are committed in ascending order of
///      their pre-payment P_j while the budget lasts.
///
/// A task whose critical price does not exist (pricing a winner would need
/// workers beyond the end of the queue) cannot be truthfully priced; such
/// tasks are dropped in pre-allocation without consuming any frequency.
class MelodyAuction final : public Mechanism {
 public:
  explicit MelodyAuction(PaymentRule rule = PaymentRule::kCriticalValue)
      : rule_(rule) {}

  AllocationResult run(const AuctionContext& context) override;

  std::string name() const override { return "MELODY"; }

  /// When the context carries a bid book, run() ranks from the ladder in
  /// O(N) instead of filtering + sorting the worker span, with bit-identical
  /// allocation (the ladder maintains the rank sort's total order).
  bool supports_incremental() const override { return true; }

  PaymentRule payment_rule() const noexcept { return rule_; }

 private:
  PaymentRule rule_;
};

}  // namespace melody::auction
