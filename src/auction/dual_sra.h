// The dual form of the SRA problem (paper footnote 6): instead of
// maximizing the number of satisfied tasks under a budget, minimize the
// requester's spend subject to a target utility (number of satisfied
// tasks). Per the footnote, the greedy adapts by changing only the
// stage-2 terminating condition: commit tasks in ascending pre-payment
// order until the target is met.
#pragma once

#include <span>

#include "auction/mechanism.h"
#include "auction/melody_auction.h"
#include "auction/types.h"

namespace melody::auction {

struct DualSraResult {
  AllocationResult allocation;
  /// Total payment of the committed tasks: the minimum budget the greedy
  /// needs to reach the target utility.
  double required_budget = 0.0;
  /// False when even committing every priceable task cannot reach the
  /// target; the allocation then contains everything that could be served.
  bool target_met = false;
};

/// Run the dual greedy: same qualification, ranking, pre-allocation and
/// pricing as MelodyAuction (config.budget is ignored), committing the
/// cheapest tasks until `target_utility` of them are satisfied.
DualSraResult run_dual_sra(std::span<const WorkerProfile> workers,
                           std::span<const Task> tasks,
                           const AuctionConfig& config,
                           std::size_t target_utility,
                           PaymentRule rule = PaymentRule::kCriticalValue);

/// AuctionContext form (API consolidation): same dual greedy, with the
/// stage timers recorded under the shared greedy-core metric names and the
/// dual-specific result event delivered to the context's sink.
DualSraResult run_dual_sra(const AuctionContext& context,
                           std::size_t target_utility,
                           PaymentRule rule = PaymentRule::kCriticalValue);

}  // namespace melody::auction
