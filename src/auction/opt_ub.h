// OPT-UB: an efficiently computable upper bound on the optimal SRA solution
// (the paper's Appendix C benchmark, used in Fig. 4).
//
// The bound relaxes the true optimum in three ways, each of which can only
// increase the achievable requester utility:
//   1. The omniscient requester pays each worker exactly his true cost
//      (no information rent), as in the paper's OPT definition.
//   2. Worker supply is pooled fractionally: worker i contributes up to
//      n_i * mu_i units of quality at cost density c_i / mu_i, divisible
//      across tasks in arbitrary fractions.
//   3. Tasks are filled cheapest-threshold-first from the cheapest-density
//      supply, which is optimal for the fractional relaxation (choosing any
//      other task set or supply order can only satisfy fewer tasks).
#pragma once

#include <span>

#include "auction/mechanism.h"
#include "auction/types.h"

namespace melody::auction {

/// Upper bound on the number of tasks the optimal (full-knowledge) solution
/// can satisfy within the budget. Applies the same qualification filter as
/// the mechanisms so the comparison is like-for-like.
std::size_t opt_upper_bound(std::span<const WorkerProfile> workers,
                            std::span<const Task> tasks,
                            const AuctionConfig& config);

/// AuctionContext form (API consolidation; the context's sink is unused —
/// the bound is an analysis helper, not a mechanism run).
std::size_t opt_upper_bound(const AuctionContext& context);

}  // namespace melody::auction
