#include "auction/types.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

namespace melody::auction {

double AuctionConfig::lambda() const noexcept {
  if (cost_min <= 0.0 || theta_min <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return (cost_max * cost_max * (theta_min + theta_max) * theta_max * theta_max) /
         (cost_min * cost_min * theta_min * theta_min * theta_min);
}

double AllocationResult::total_payment() const noexcept {
  double total = 0.0;
  for (const auto& a : assignments) total += a.payment;
  return total;
}

double AllocationResult::payment_to(WorkerId worker) const noexcept {
  double total = 0.0;
  for (const auto& a : assignments) {
    if (a.worker == worker) total += a.payment;
  }
  return total;
}

int AllocationResult::tasks_assigned_to(WorkerId worker) const noexcept {
  int count = 0;
  for (const auto& a : assignments) {
    if (a.worker == worker) ++count;
  }
  return count;
}

std::vector<WorkerId> AllocationResult::workers_of(TaskId task) const {
  std::vector<WorkerId> out;
  for (const auto& a : assignments) {
    if (a.task == task) out.push_back(a.worker);
  }
  return out;
}

bool AllocationResult::is_assigned(WorkerId worker, TaskId task) const noexcept {
  return std::any_of(assignments.begin(), assignments.end(), [&](const auto& a) {
    return a.worker == worker && a.task == task;
  });
}

namespace {

std::string format_violation(const char* fmt, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof buf, fmt, a, b);
  return buf;
}

}  // namespace

std::string check_budget_feasibility(const AllocationResult& result,
                                     const AuctionConfig& config) {
  const double paid = result.total_payment();
  // Tolerate accumulated floating-point rounding of per-assignment payments.
  if (paid > config.budget * (1.0 + 1e-9) + 1e-9) {
    return format_violation("total payment %.6f exceeds budget %.6f", paid,
                            config.budget);
  }
  return {};
}

std::string check_frequency_feasibility(const AllocationResult& result,
                                        std::span<const WorkerProfile> workers) {
  std::unordered_map<WorkerId, int> used;
  for (const auto& a : result.assignments) ++used[a.worker];
  for (const auto& w : workers) {
    const auto it = used.find(w.id);
    const int n = it == used.end() ? 0 : it->second;
    if (n > w.bid.frequency) {
      return format_violation("worker used %.0f times but bid frequency %.0f",
                              n, w.bid.frequency);
    }
    if (it != used.end()) used.erase(it);
  }
  if (!used.empty()) return "assignment references unknown worker id";
  return {};
}

std::string check_task_satisfaction(const AllocationResult& result,
                                    std::span<const WorkerProfile> workers,
                                    std::span<const Task> tasks) {
  std::unordered_map<WorkerId, double> quality;
  for (const auto& w : workers) quality[w.id] = w.estimated_quality;
  std::unordered_map<TaskId, double> received;
  for (const auto& a : result.assignments) {
    const auto it = quality.find(a.worker);
    if (it == quality.end()) return "assignment references unknown worker id";
    received[a.task] += it->second;
  }
  std::unordered_map<TaskId, double> threshold;
  for (const auto& t : tasks) threshold[t.id] = t.quality_threshold;
  for (TaskId selected : result.selected_tasks) {
    const auto th = threshold.find(selected);
    if (th == threshold.end()) return "selected task has unknown id";
    const double got = received[selected];
    if (got + 1e-9 < th->second) {
      return format_violation("selected task received quality %.6f < Q %.6f",
                              got, th->second);
    }
  }
  return {};
}

}  // namespace melody::auction
