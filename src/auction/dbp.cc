#include "auction/dbp.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace melody::auction {

namespace {

/// Coverage tolerance: mutate-and-restore accumulation drifts by a few ulps
/// (e.g. 0.9 + 0.5 - 0.5 + 0.1 lands just below 1.0), so "covered" is
/// decided up to a relative epsilon.
constexpr double kCoverEps = 1e-9;

bool covers(double fill, double capacity) noexcept {
  return fill >= capacity * (1.0 - kCoverEps);
}

}  // namespace

std::size_t dbp_greedy(std::span<const double> items, double capacity) {
  if (capacity <= 0.0) throw std::invalid_argument("dbp: capacity must be > 0");
  std::vector<double> sorted(items.begin(), items.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::size_t bins = 0;
  double fill = 0.0;
  for (double item : sorted) {
    fill += item;
    if (covers(fill, capacity)) {
      ++bins;
      fill = 0.0;
    }
  }
  return bins;
}

std::size_t dbp_upper_bound(std::span<const double> items, double capacity) {
  if (capacity <= 0.0) throw std::invalid_argument("dbp: capacity must be > 0");
  double total = 0.0;
  for (double item : items) total += item;
  return static_cast<std::size_t>(total / capacity);
}

namespace {

/// Branch and bound over "which bin does each item go into" (or nowhere).
/// Bins are interchangeable, so an item may only open bin b if bins 0..b-1
/// are already open — this kills the permutation symmetry.
class DbpSearch {
 public:
  DbpSearch(std::vector<double> items, double capacity, std::size_t max_bins)
      : items_(std::move(items)), capacity_(capacity) {
    // Descending order makes the suffix-sum bound tight early.
    std::sort(items_.begin(), items_.end(), std::greater<>());
    suffix_sum_.assign(items_.size() + 1, 0.0);
    for (std::size_t i = items_.size(); i > 0; --i) {
      suffix_sum_[i - 1] = suffix_sum_[i] + items_[i - 1];
    }
    fill_.assign(max_bins, 0.0);
  }

  std::size_t solve() {
    best_ = 0;
    dfs(0, 0);
    return best_;
  }

 private:
  void dfs(std::size_t item, std::size_t open_bins) {
    std::size_t covered = 0;
    double deficit = 0.0;
    for (std::size_t b = 0; b < open_bins; ++b) {
      if (covers(fill_[b], capacity_)) {
        ++covered;
      } else {
        deficit += capacity_ - fill_[b];
      }
    }
    best_ = std::max(best_, covered);
    if (item >= items_.size()) return;

    // Bound: remaining mass can cover the open deficits and then at most
    // floor(leftover / capacity) fresh bins.
    const double remaining = suffix_sum_[item];
    std::size_t bound = covered;
    if (remaining >= deficit) {
      bound = open_bins +
              static_cast<std::size_t>((remaining - deficit) / capacity_);
      bound = std::min(bound, fill_.size());
    } else {
      // Even filling greedily, some open bins stay uncovered; a safe bound
      // is all open bins (we cannot exceed it without more mass).
      bound = open_bins;
    }
    if (bound <= best_) return;

    // Place the item in each open, still-uncovered bin (covered bins never
    // benefit from more mass).
    for (std::size_t b = 0; b < open_bins; ++b) {
      if (covers(fill_[b], capacity_)) continue;
      fill_[b] += items_[item];
      dfs(item + 1, open_bins);
      fill_[b] -= items_[item];
    }
    // Open a new bin with this item.
    if (open_bins < fill_.size()) {
      fill_[open_bins] = items_[item];
      dfs(item + 1, open_bins + 1);
      fill_[open_bins] = 0.0;
    }
    // Discard the item.
    dfs(item + 1, open_bins);
  }

  std::vector<double> items_;
  double capacity_;
  std::vector<double> suffix_sum_;
  std::vector<double> fill_;
  std::size_t best_ = 0;
};

}  // namespace

std::size_t dbp_exact(std::span<const double> items, double capacity) {
  if (capacity <= 0.0) throw std::invalid_argument("dbp: capacity must be > 0");
  if (items.size() > kDbpExactMaxItems) {
    throw std::invalid_argument("dbp_exact: instance too large");
  }
  const std::size_t max_bins = dbp_upper_bound(items, capacity);
  if (max_bins == 0) return 0;
  return DbpSearch(std::vector<double>(items.begin(), items.end()), capacity,
                   max_bins)
      .solve();
}

}  // namespace melody::auction
