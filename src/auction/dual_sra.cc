#include "auction/dual_sra.h"

#include "auction/greedy_core.h"

namespace melody::auction {

DualSraResult run_dual_sra(std::span<const WorkerProfile> workers,
                           std::span<const Task> tasks,
                           const AuctionConfig& config,
                           std::size_t target_utility, PaymentRule rule) {
  return run_dual_sra(AuctionContext{workers, tasks, config}, target_utility,
                      rule);
}

DualSraResult run_dual_sra(const AuctionContext& context,
                           std::size_t target_utility, PaymentRule rule) {
  // Shares the greedy core, so it shares the incremental path too: a
  // context carrying a bid book ranks from the ladder instead of sorting.
  const auto queue =
      context.book != nullptr
          ? internal::build_ranking_queue(*context.book, context.config)
          : internal::build_ranking_queue(context.workers, context.config);
  const auto pre = internal::pre_allocate(queue, context.tasks, rule);

  DualSraResult result;
  for (const auto& p : pre) {
    if (result.allocation.requester_utility() >= target_utility) break;
    result.required_budget += p.total_payment;
    internal::commit(p, queue, context.tasks, result.allocation);
  }
  result.target_met =
      result.allocation.requester_utility() >= target_utility;
  context.emit("auction/dual_result",
               {{"target_utility", target_utility},
                {"target_met", result.target_met ? 1 : 0},
                {"required_budget", result.required_budget},
                {"selected_tasks", result.allocation.selected_tasks.size()}});
  return result;
}

}  // namespace melody::auction
