#include "auction/dual_sra.h"

#include "auction/greedy_core.h"

namespace melody::auction {

DualSraResult run_dual_sra(std::span<const WorkerProfile> workers,
                           std::span<const Task> tasks,
                           const AuctionConfig& config,
                           std::size_t target_utility, PaymentRule rule) {
  const auto queue = internal::build_ranking_queue(workers, config);
  const auto pre = internal::pre_allocate(queue, tasks, rule);

  DualSraResult result;
  for (const auto& p : pre) {
    if (result.allocation.requester_utility() >= target_utility) break;
    result.required_budget += p.total_payment;
    internal::commit(p, queue, tasks, result.allocation);
  }
  result.target_met =
      result.allocation.requester_utility() >= target_utility;
  return result;
}

}  // namespace melody::auction
