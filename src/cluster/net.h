// Blocking line-oriented TCP plumbing for the cluster planes. Both the
// coordinator's control protocol and the service data protocol are
// newline-delimited JSON, so one small client covers them: connect to a
// member or coordinator, write a line, read a line. The nonblocking epoll
// machinery in svc/event_loop.h is the *server* side; clients here are
// sequential request/reply callers (coordinator RPCs, the chaos harness,
// melody_loadgen's cluster mode) where blocking I/O is the simple and
// correct shape.
#pragma once

#include <map>
#include <string>

#include "svc/protocol.h"

namespace melody::cluster {

struct ClusterMember;

/// One blocking TCP connection speaking newline-delimited lines. Movable
/// so it can live in containers; a failed send/recv records last_error()
/// and leaves the connection closed (callers reconnect explicitly).
class LineClient {
 public:
  LineClient() = default;
  ~LineClient();
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Connect to host:port (numeric IPv4 host). False on failure, with the
  /// reason in last_error(). An already-open connection is closed first.
  bool connect(const std::string& host, int port);
  bool connected() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  /// Write `line` plus the newline terminator. False closes the socket.
  bool send_line(const std::string& line);
  /// Read one line (terminator stripped), carrying leftover bytes across
  /// calls. False on EOF/error, which closes the socket.
  bool recv_line(std::string* line);
  /// send_line + recv_line.
  bool exchange(const std::string& line, std::string* reply);

  const std::string& last_error() const noexcept { return error_; }

 private:
  int fd_ = -1;
  std::string buffer_;
  std::string error_;
};

/// Data-plane RPC over cached per-member connections: format the request,
/// exchange one line, parse the response. A dead connection (member was
/// killed and respawned on the same endpoint) is dropped and redialed once
/// before the call is reported failed; protocol-level failures come back
/// as ok=false responses, not as call failures.
class MemberPool {
 public:
  bool call(const ClusterMember& member, const svc::Request& request,
            svc::Response* out);
  /// Forget the cached connection to `member` (after a deliberate kill).
  void drop(const ClusterMember& member);
  const std::string& last_error() const noexcept { return error_; }

 private:
  std::map<std::string, LineClient> conns_;  // keyed "host:port"
  std::string error_;
};

}  // namespace melody::cluster
