// Cluster coordinator: the single writer of the routing table, the driver
// of live shard migration, and the registry the chaos harness and load
// generator read. It owns no shard state itself — every shard lives inside
// a melody_serve member process — and it talks to members over the regular
// data protocol through an injected RPC (a std::function), so the exact
// same coordinator logic runs over real TCP in tools/melody_cluster and
// over in-process ShardedService instances in the unit tests.
//
// Control protocol (one flat JSON line per command, "cmd" selects):
//   {"cmd":"ping"}
//   {"cmd":"join","member":"a","host":"127.0.0.1","port":7201,"pid":12,
//    "shards":[0,1,2,3]}            members announce themselves (and, on a
//                                   respawn, an empty list: the coordinator
//                                   re-imports their shards from the last
//                                   published envelopes)
//   {"cmd":"heartbeat","member":"a"}
//   {"cmd":"status"}                joined/expected/ready/epoch
//   {"cmd":"route_table"}           the full RoutingTable encoding
//   {"cmd":"migrate","shard":3,"to":"b"}   live migration, synchronous
//   {"cmd":"drain","member":"a"}    migrate every shard off one member
//   {"cmd":"publish"}               snapshot every shard (no detach) into
//                                   publish_dir — the chaos recovery floor
//   {"cmd":"spawn_args"}            argv tail for respawning a member
//   {"cmd":"shutdown"}              forward shutdown to members, mark done
//
// Migration is a three-step synchronous handshake per shard:
//   1. shard_export {detach:true, epoch:E+1} on the owner — the owner
//      stops accepting the shard's frames *before* the envelope is cut,
//      so the envelope holds exactly the acknowledged prefix;
//   2. shard_import {epoch:E+1} on the target — state is restored, then
//      the shard flips active;
//   3. the table flips: owner[shard] = target, epoch = E+1.
// A client caught mid-flight sees not_owner from the old owner, refreshes
// the table, and retries — no acknowledged frame is ever dropped. If the
// export fails after the detach took effect the shard is left unowned
// (the table still names the old owner but that member answers not_owner);
// recovery is a respawn-join, which re-imports from the last published
// envelope — the same path a chaos kill takes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/routing.h"
#include "svc/protocol.h"

namespace melody::cluster {

struct CoordinatorOptions {
  int shards = 1;
  int workers = 1;
  /// status reports ready once this many members joined (and every shard
  /// has an owner).
  int expected_members = 1;
  /// Directory for published snapshots and migration envelopes.
  std::string publish_dir = ".";
  /// argv tail a respawned member should be started with (spawn_args op).
  std::vector<std::string> spawn_args;
};

class Coordinator {
 public:
  /// Data-plane RPC to one member: send the request, parse one response.
  /// Returns false only on transport failure (protocol failures come back
  /// as ok=false responses). Injected: TCP in tools, in-process in tests.
  using DataRpc = std::function<bool(const ClusterMember&,
                                     const svc::Request&, svc::Response*)>;

  Coordinator(CoordinatorOptions options, DataRpc rpc);

  /// Execute one control command; always returns a reply object whose
  /// first field is "ok". Serialized internally — callers may invoke from
  /// any thread.
  svc::WireObject handle(const svc::WireObject& command);

  /// Snapshot of the current routing table.
  RoutingTable table() const;
  /// Every shard owned and expected_members joined.
  bool ready() const;
  /// A shutdown command has been handled.
  bool shutdown_requested() const;

 private:
  svc::WireObject do_join(const svc::WireObject& command);
  svc::WireObject do_migrate(const svc::WireObject& command);
  svc::WireObject do_drain(const svc::WireObject& command);
  svc::WireObject do_publish(const svc::WireObject& command);
  svc::WireObject do_status() const;
  svc::WireObject do_spawn_args() const;
  svc::WireObject do_shutdown();

  /// One shard hop (export detach on `from`, import on `to`, table flip).
  /// Returns empty on success, the failure reason otherwise; *pause_ms
  /// gets the unavailability window (export start to import done).
  std::string migrate_shard(int shard, int from, int to, double* pause_ms);

  int member_index(const std::string& name) const;
  std::string envelope_path(int shard, std::int64_t epoch,
                            const char* kind) const;

  CoordinatorOptions options_;
  DataRpc rpc_;
  mutable std::mutex mutex_;
  RoutingTable table_;
  std::map<int, std::string> published_;  // shard -> latest envelope path
  std::map<std::string, std::uint64_t> heartbeats_;  // member -> count
  std::int64_t next_request_id_ = 1;
  bool shutdown_ = false;
};

}  // namespace melody::cluster
