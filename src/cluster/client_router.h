// Cluster-aware request router for clients (melody_loadgen --cluster, the
// chaos harness, the migration bit-identity tests): holds a RoutingTable,
// sends each request to the member owning its shard, and reassembles
// broadcast replies so the cluster answers with the exact bytes a
// single-process K-shard deployment would have produced.
//
// Single-shard ops route by svc::route_worker (worker ops) or the explicit
// shard field (query_run); a structured not_owner rejection refreshes the
// table from the coordinator and retries against the new owner, so a
// migration in flight is invisible to the caller.
//
// Broadcast ops fan out to every member owning at least one shard. In
// cluster mode members re-home each shard's reply under "shard<g>/..."
// verbatim (svc::merge_shard_parts with rehome_all), so this client can
// reconstruct the per-global-shard parts across members, order them by
// global index, and re-run the exact same merge — the fold over members is
// NOT used because some merged fields (e.g. runs_executed) only appear on
// shards that produced them, which a second-level fold cannot undo.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cluster/routing.h"
#include "svc/protocol.h"

namespace melody::cluster {

/// Extract the part global shard `g` contributed to a cluster member's
/// re-homed broadcast reply: every "shard<g>/..." field, prefix stripped,
/// in reply order. `id` seeds the part's correlation id for the re-merge.
svc::Response rehomed_part(const svc::Response& reply, std::int64_t id,
                           int g);

class ClusterClient {
 public:
  /// Same injected transport shape as Coordinator::DataRpc — TCP in the
  /// tools, direct ShardedService submission in tests.
  using DataRpc = std::function<bool(const ClusterMember&,
                                     const svc::Request&, svc::Response*)>;
  /// Control-plane RPC to the coordinator (route_table refreshes). May be
  /// null when the caller installs tables by hand (set_table).
  using ControlRpc =
      std::function<bool(const svc::WireObject&, svc::WireObject*)>;

  explicit ClusterClient(DataRpc data, ControlRpc control = nullptr);

  void set_table(RoutingTable table);
  const RoutingTable& table() const noexcept { return table_; }

  /// Fetch the routing table from the coordinator. False (with
  /// last_error()) on transport failure, a failure reply, or no control
  /// channel.
  bool refresh_table();

  /// Route and execute one request. Returns false only on transport or
  /// routing-table failure; service-level failures land in *out with
  /// ok=false. checkpoint is refused client-side (members would race one
  /// another clobbering the same path — the coordinator's publish op is
  /// the cluster-wide snapshot), and the shard handoff ops are
  /// coordinator-driven (migrate/publish), not client ops.
  bool call(const svc::Request& request, svc::Response* out);

  const std::string& last_error() const noexcept { return error_; }

 private:
  bool call_single(int shard, const svc::Request& request,
                   svc::Response* out);
  bool call_broadcast(const svc::Request& request, svc::Response* out);

  DataRpc data_;
  ControlRpc control_;
  RoutingTable table_;
  std::string error_;
};

}  // namespace melody::cluster
