// Cluster routing table: which process owns which global platform shard,
// at which routing epoch. The coordinator is the single writer; members
// and clients hold read-only copies and learn about staleness through
// structured not_owner rejections (svc/protocol.h) that carry the
// responder's epoch.
//
// The table is deliberately value-typed and wire-encodable: the
// coordinator pushes it over the control protocol as one flat JSON line
// (route_table), so melody_loadgen and the chaos harness route with the
// exact same splitting arithmetic the in-process router uses
// (svc::route_worker over the planner's worker offsets).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/wire.h"

namespace melody::cluster {

/// One cluster member (a melody_serve process) as the coordinator sees it.
struct ClusterMember {
  std::string name;
  std::string host = "127.0.0.1";
  int port = 0;           // data-plane port (the member's actual TCP port)
  std::int64_t pid = 0;   // for liveness checks and chaos kills

  bool operator==(const ClusterMember&) const = default;
};

/// The worker fence posts plan_shards (svc/shard.h) produces for a
/// `workers`-worker, `shards`-shard deployment, in closed form: shard s
/// starts at s*(w/K) + min(s, w%K) — the first w%K shards take one extra
/// worker. Pinned against the planner by test_cluster.
std::vector<int> worker_offsets_for(int workers, int shards);

struct RoutingTable {
  std::int64_t epoch = 0;
  int shards = 0;
  int workers = 0;
  /// Per global shard: index into `members`, or -1 while unassigned.
  std::vector<int> owner;
  /// shards + 1 fence posts (worker_offsets_for); shard_for routes on it.
  std::vector<int> worker_offsets;
  std::vector<ClusterMember> members;

  /// Every shard has an in-range owner (the cluster can serve).
  bool complete() const noexcept;

  /// The global shard `worker` routes to — identical to the in-process
  /// router's decision (svc::route_worker): contiguous-range ownership for
  /// population names "w<g>", hash affinity for newcomers.
  int shard_for(const std::string& worker) const;

  /// Flat wire encoding:
  ///   {"epoch":3,"shards":8,"workers":64,"owner":[0,0,1,...],
  ///    "worker_offsets":[0,8,...,64],"members":2,
  ///    "member0_name":"a","member0_host":"127.0.0.1","member0_port":7201,
  ///    "member0_pid":1234, "member1_name":...}
  svc::WireObject encode() const;
  /// Inverse of encode(). Throws svc::WireError on missing/mistyped
  /// fields and std::invalid_argument on inconsistent shapes (owner or
  /// offsets list not matching the shard count).
  static RoutingTable decode(const svc::WireObject& object);
};

}  // namespace melody::cluster
