#include "cluster/coordinator.h"

#include <chrono>
#include <utility>

namespace melody::cluster {

namespace {

using svc::WireObject;
using svc::WireValue;

WireObject ok_reply() {
  WireObject reply;
  reply.set("ok", WireValue::of(true));
  return reply;
}

WireObject fail_reply(const std::string& message) {
  WireObject reply;
  reply.set("ok", WireValue::of(false));
  reply.set("error", WireValue::of(message));
  return reply;
}

WireValue of_int(std::int64_t v) { return WireValue::of(v); }

}  // namespace

Coordinator::Coordinator(CoordinatorOptions options, DataRpc rpc)
    : options_(std::move(options)), rpc_(std::move(rpc)) {
  table_.epoch = 1;
  table_.shards = options_.shards;
  table_.workers = options_.workers;
  table_.owner.assign(static_cast<std::size_t>(options_.shards), -1);
  table_.worker_offsets = worker_offsets_for(options_.workers,
                                             options_.shards);
}

WireObject Coordinator::handle(const WireObject& command) {
  std::lock_guard<std::mutex> lock(mutex_);
  try {
    const std::string cmd = command.text_or("cmd", "");
    if (cmd == "ping") return ok_reply();
    if (cmd == "join") return do_join(command);
    if (cmd == "status") return do_status();
    if (cmd == "route_table") {
      WireObject reply = ok_reply();
      const WireObject encoded = table_.encode();
      for (const auto& [key, value] : encoded.entries()) {
        reply.set(key, value);
      }
      return reply;
    }
    if (cmd == "migrate") return do_migrate(command);
    if (cmd == "drain") return do_drain(command);
    if (cmd == "publish") return do_publish(command);
    if (cmd == "heartbeat") {
      const std::string member = command.text_or("member", "");
      if (member_index(member) < 0) {
        return fail_reply("heartbeat: unknown member \"" + member + "\"");
      }
      ++heartbeats_[member];
      WireObject reply = ok_reply();
      reply.set("epoch", of_int(table_.epoch));
      return reply;
    }
    if (cmd == "spawn_args") return do_spawn_args();
    if (cmd == "shutdown") return do_shutdown();
    return fail_reply("unknown control command \"" + cmd + "\"");
  } catch (const std::exception& e) {
    return fail_reply(e.what());
  }
}

WireObject Coordinator::do_join(const WireObject& command) {
  const std::string name = command.text_or("member", "");
  if (name.empty()) return fail_reply("join: member name required");
  int idx = member_index(name);
  if (idx < 0) {
    idx = static_cast<int>(table_.members.size());
    table_.members.push_back(ClusterMember{});
    table_.members.back().name = name;
  }
  ClusterMember& member = table_.members[static_cast<std::size_t>(idx)];
  member.host = command.text_or("host", member.host);
  member.port = static_cast<int>(
      command.number_or("port", static_cast<double>(member.port)));
  member.pid = static_cast<std::int64_t>(
      command.number_or("pid", static_cast<double>(member.pid)));

  std::int64_t restored = 0;
  if (command.has("shards")) {
    // Initial assembly: the member announces the shards it serves. Filling
    // a vacant slot keeps the epoch (nothing routed there yet); taking a
    // shard over from another member is an ownership change and bumps it.
    bool reassigned = false;
    for (const double raw : command.number_list("shards")) {
      const int s = static_cast<int>(raw);
      if (s < 0 || s >= table_.shards) {
        return fail_reply("join: shard " + std::to_string(s) +
                          " out of range");
      }
      auto& owner = table_.owner[static_cast<std::size_t>(s)];
      if (owner >= 0 && owner != idx) reassigned = true;
      owner = idx;
    }
    if (reassigned) ++table_.epoch;
  }
  if (!command.has("shards") ||
      command.number_list("shards").empty()) {
    // A respawn joins bare; every shard the table still charges to this
    // member is restored from its last published envelope, then the epoch
    // advances so clients re-learn the (re-validated) ownership.
    std::vector<int> owned;
    for (int s = 0; s < table_.shards; ++s) {
      if (table_.owner[static_cast<std::size_t>(s)] == idx) owned.push_back(s);
    }
    const std::int64_t next_epoch = table_.epoch + 1;
    for (const int s : owned) {
      const auto published = published_.find(s);
      if (published == published_.end()) {
        return fail_reply("join: no published envelope for shard " +
                          std::to_string(s));
      }
      svc::Request request;
      request.op = svc::Op::kShardImport;
      request.id = next_request_id_++;
      request.shard = s;
      request.path = published->second;
      request.epoch = next_epoch;
      svc::Response response;
      if (!rpc_(member, request, &response)) {
        return fail_reply("join: shard " + std::to_string(s) +
                          " import rpc failed");
      }
      if (!response.ok) {
        return fail_reply("join: shard " + std::to_string(s) +
                          " import failed: " + response.error);
      }
      ++restored;
    }
    if (restored > 0) table_.epoch = next_epoch;
  }
  WireObject reply = ok_reply();
  reply.set("epoch", of_int(table_.epoch));
  reply.set("members", of_int(static_cast<std::int64_t>(
                           table_.members.size())));
  reply.set("restored", of_int(restored));
  return reply;
}

std::string Coordinator::migrate_shard(const int shard, const int from,
                                       const int to, double* pause_ms) {
  const std::int64_t next_epoch = table_.epoch + 1;
  const std::string path = envelope_path(shard, next_epoch, "migrate");
  const ClusterMember& source =
      table_.members[static_cast<std::size_t>(from)];
  const ClusterMember& target = table_.members[static_cast<std::size_t>(to)];

  const auto start = std::chrono::steady_clock::now();
  svc::Request export_request;
  export_request.op = svc::Op::kShardExport;
  export_request.id = next_request_id_++;
  export_request.shard = shard;
  export_request.path = path;
  export_request.detach = true;
  export_request.epoch = next_epoch;
  svc::Response response;
  if (!rpc_(source, export_request, &response)) {
    return "export rpc to " + source.name + " failed";
  }
  if (!response.ok) {
    return "export on " + source.name + " failed: " + response.error;
  }

  svc::Request import_request;
  import_request.op = svc::Op::kShardImport;
  import_request.id = next_request_id_++;
  import_request.shard = shard;
  import_request.path = path;
  import_request.epoch = next_epoch;
  if (!rpc_(target, import_request, &response)) {
    return "import rpc to " + target.name + " failed";
  }
  if (!response.ok) {
    return "import on " + target.name + " failed: " + response.error;
  }
  const auto done = std::chrono::steady_clock::now();
  if (pause_ms != nullptr) {
    *pause_ms =
        std::chrono::duration<double, std::milli>(done - start).count();
  }
  table_.owner[static_cast<std::size_t>(shard)] = to;
  table_.epoch = next_epoch;
  published_[shard] = path;
  return "";
}

WireObject Coordinator::do_migrate(const WireObject& command) {
  const int shard = static_cast<int>(command.number_or("shard", -1));
  if (shard < 0 || shard >= table_.shards) {
    return fail_reply("migrate: shard out of range");
  }
  const std::string to_name = command.text_or("to", "");
  const int to = member_index(to_name);
  if (to < 0) {
    return fail_reply("migrate: unknown member \"" + to_name + "\"");
  }
  const int from = table_.owner[static_cast<std::size_t>(shard)];
  if (from < 0) {
    return fail_reply("migrate: shard " + std::to_string(shard) +
                      " has no owner");
  }
  if (from == to) {
    return fail_reply("migrate: shard " + std::to_string(shard) +
                      " is already on " + to_name);
  }
  double pause_ms = 0.0;
  const std::string error = migrate_shard(shard, from, to, &pause_ms);
  if (!error.empty()) return fail_reply("migrate: " + error);
  WireObject reply = ok_reply();
  reply.set("epoch", of_int(table_.epoch));
  reply.set("pause_ms", WireValue::of(pause_ms));
  reply.set("path", WireValue::of(published_[shard]));
  return reply;
}

WireObject Coordinator::do_drain(const WireObject& command) {
  const std::string name = command.text_or("member", "");
  const int idx = member_index(name);
  if (idx < 0) return fail_reply("drain: unknown member \"" + name + "\"");
  std::vector<int> others;
  for (int m = 0; m < static_cast<int>(table_.members.size()); ++m) {
    if (m != idx) others.push_back(m);
  }
  if (others.empty()) return fail_reply("drain: no other members");
  std::int64_t moved = 0;
  double worst_pause_ms = 0.0;
  for (int s = 0; s < table_.shards; ++s) {
    if (table_.owner[static_cast<std::size_t>(s)] != idx) continue;
    const int to = others[static_cast<std::size_t>(moved) % others.size()];
    double pause_ms = 0.0;
    const std::string error = migrate_shard(s, idx, to, &pause_ms);
    if (!error.empty()) {
      return fail_reply("drain: shard " + std::to_string(s) + ": " + error);
    }
    worst_pause_ms = std::max(worst_pause_ms, pause_ms);
    ++moved;
  }
  WireObject reply = ok_reply();
  reply.set("moved", of_int(moved));
  reply.set("epoch", of_int(table_.epoch));
  reply.set("pause_ms", WireValue::of(worst_pause_ms));
  return reply;
}

WireObject Coordinator::do_publish(const WireObject& command) {
  const std::string only = command.text_or("member", "");
  const int only_idx = only.empty() ? -1 : member_index(only);
  if (!only.empty() && only_idx < 0) {
    return fail_reply("publish: unknown member \"" + only + "\"");
  }
  std::int64_t published = 0;
  for (int s = 0; s < table_.shards; ++s) {
    const int owner = table_.owner[static_cast<std::size_t>(s)];
    if (owner < 0) continue;
    if (only_idx >= 0 && owner != only_idx) continue;
    // No detach, no epoch change: a published snapshot is a recovery
    // floor, not a handoff — the owner keeps serving throughout.
    const std::string path = envelope_path(s, table_.epoch, "publish");
    svc::Request request;
    request.op = svc::Op::kShardExport;
    request.id = next_request_id_++;
    request.shard = s;
    request.path = path;
    svc::Response response;
    const ClusterMember& member =
        table_.members[static_cast<std::size_t>(owner)];
    if (!rpc_(member, request, &response) || !response.ok) {
      return fail_reply("publish: shard " + std::to_string(s) + " on " +
                        member.name + " failed" +
                        (response.error.empty() ? "" : ": " + response.error));
    }
    published_[s] = path;
    ++published;
  }
  WireObject reply = ok_reply();
  reply.set("published", of_int(published));
  reply.set("epoch", of_int(table_.epoch));
  return reply;
}

WireObject Coordinator::do_status() const {
  WireObject reply = ok_reply();
  reply.set("epoch", of_int(table_.epoch));
  reply.set("shards", of_int(table_.shards));
  reply.set("workers", of_int(table_.workers));
  reply.set("members", of_int(static_cast<std::int64_t>(
                           table_.members.size())));
  reply.set("expected", of_int(options_.expected_members));
  const bool ready =
      table_.complete() &&
      static_cast<int>(table_.members.size()) >= options_.expected_members;
  reply.set("ready", WireValue::of(ready));
  reply.set("shutdown", WireValue::of(shutdown_));
  return reply;
}

WireObject Coordinator::do_spawn_args() const {
  WireObject reply = ok_reply();
  reply.set("count", of_int(static_cast<std::int64_t>(
                         options_.spawn_args.size())));
  for (std::size_t i = 0; i < options_.spawn_args.size(); ++i) {
    reply.set("arg" + std::to_string(i),
              WireValue::of(options_.spawn_args[i]));
  }
  return reply;
}

WireObject Coordinator::do_shutdown() {
  // Best-effort fan-out: a member that owns no shards still honors the op
  // (the router latches the shutdown flag before it fans out).
  for (const ClusterMember& member : table_.members) {
    svc::Request request;
    request.op = svc::Op::kShutdown;
    request.id = next_request_id_++;
    svc::Response response;
    rpc_(member, request, &response);
  }
  shutdown_ = true;
  return ok_reply();
}

RoutingTable Coordinator::table() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_;
}

bool Coordinator::ready() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.complete() &&
         static_cast<int>(table_.members.size()) >= options_.expected_members;
}

bool Coordinator::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

int Coordinator::member_index(const std::string& name) const {
  for (std::size_t i = 0; i < table_.members.size(); ++i) {
    if (table_.members[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Coordinator::envelope_path(const int shard,
                                       const std::int64_t epoch,
                                       const char* kind) const {
  return options_.publish_dir + "/shard" + std::to_string(shard) + "_e" +
         std::to_string(epoch) + "_" + kind + ".mldymigr";
}

}  // namespace melody::cluster
