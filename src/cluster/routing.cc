#include "cluster/routing.h"

#include <algorithm>
#include <stdexcept>

#include "svc/router.h"

namespace melody::cluster {

std::vector<int> worker_offsets_for(const int workers, const int shards) {
  if (workers < 1 || shards < 1) {
    throw std::invalid_argument("cluster: workers and shards must be >= 1");
  }
  std::vector<int> offsets;
  offsets.reserve(static_cast<std::size_t>(shards) + 1);
  const int base = workers / shards;
  const int extra = workers % shards;
  for (int s = 0; s <= shards; ++s) {
    offsets.push_back(s * base + std::min(s, extra));
  }
  return offsets;
}

bool RoutingTable::complete() const noexcept {
  if (shards < 1 || static_cast<int>(owner.size()) != shards) return false;
  for (const int m : owner) {
    if (m < 0 || m >= static_cast<int>(members.size())) return false;
  }
  return true;
}

int RoutingTable::shard_for(const std::string& worker) const {
  return svc::route_worker(worker, worker_offsets, workers);
}

svc::WireObject RoutingTable::encode() const {
  using svc::WireValue;
  svc::WireObject object;
  object.set("epoch", WireValue::of(epoch));
  object.set("shards", WireValue::of(static_cast<std::int64_t>(shards)));
  object.set("workers", WireValue::of(static_cast<std::int64_t>(workers)));
  std::vector<double> owners(owner.begin(), owner.end());
  object.set("owner", WireValue::of(std::move(owners)));
  std::vector<double> offsets(worker_offsets.begin(), worker_offsets.end());
  object.set("worker_offsets", WireValue::of(std::move(offsets)));
  object.set("members",
             WireValue::of(static_cast<std::int64_t>(members.size())));
  for (std::size_t i = 0; i < members.size(); ++i) {
    const std::string prefix = "member" + std::to_string(i) + "_";
    object.set(prefix + "name", WireValue::of(members[i].name));
    object.set(prefix + "host", WireValue::of(members[i].host));
    object.set(prefix + "port",
               WireValue::of(static_cast<std::int64_t>(members[i].port)));
    object.set(prefix + "pid", WireValue::of(members[i].pid));
  }
  return object;
}

RoutingTable RoutingTable::decode(const svc::WireObject& object) {
  RoutingTable table;
  table.epoch = static_cast<std::int64_t>(object.number("epoch"));
  table.shards = static_cast<int>(object.number("shards"));
  table.workers = static_cast<int>(object.number("workers"));
  for (const double m : object.number_list("owner")) {
    table.owner.push_back(static_cast<int>(m));
  }
  for (const double o : object.number_list("worker_offsets")) {
    table.worker_offsets.push_back(static_cast<int>(o));
  }
  const auto count = static_cast<std::size_t>(object.number("members"));
  for (std::size_t i = 0; i < count; ++i) {
    const std::string prefix = "member" + std::to_string(i) + "_";
    ClusterMember member;
    member.name = object.text(prefix + "name");
    member.host = object.text(prefix + "host");
    member.port = static_cast<int>(object.number(prefix + "port"));
    member.pid = static_cast<std::int64_t>(object.number(prefix + "pid"));
    table.members.push_back(std::move(member));
  }
  if (table.shards < 1 ||
      static_cast<int>(table.owner.size()) != table.shards ||
      static_cast<int>(table.worker_offsets.size()) != table.shards + 1) {
    throw std::invalid_argument("cluster: inconsistent routing table shape");
  }
  return table;
}

}  // namespace melody::cluster
