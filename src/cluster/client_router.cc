#include "cluster/client_router.h"

#include <algorithm>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

#include "svc/router.h"

namespace melody::cluster {

namespace {

using svc::Op;
using svc::Request;
using svc::Response;
using svc::WireObject;
using svc::WireValue;

}  // namespace

Response rehomed_part(const Response& reply, const std::int64_t id,
                      const int g) {
  Response part;
  part.id = id;
  const std::string prefix = "shard" + std::to_string(g) + "/";
  for (const auto& [key, value] : reply.fields.entries()) {
    if (std::string_view(key).starts_with(prefix)) {
      part.fields.set(key.substr(prefix.size()), value);
    }
  }
  return part;
}

ClusterClient::ClusterClient(DataRpc data, ControlRpc control)
    : data_(std::move(data)), control_(std::move(control)) {}

void ClusterClient::set_table(RoutingTable table) {
  table_ = std::move(table);
}

bool ClusterClient::refresh_table() {
  if (!control_) {
    error_ = "no control channel to refresh the routing table";
    return false;
  }
  WireObject command;
  command.set("cmd", WireValue::of("route_table"));
  WireObject reply;
  if (!control_(command, &reply)) {
    error_ = "route_table rpc failed";
    return false;
  }
  if (!reply.boolean_or("ok", false)) {
    error_ = "route_table: " + reply.text_or("error", "failed");
    return false;
  }
  try {
    table_ = RoutingTable::decode(reply);
  } catch (const std::exception& e) {
    error_ = std::string("route_table: ") + e.what();
    return false;
  }
  return true;
}

bool ClusterClient::call(const Request& request, Response* out) {
  switch (request.op) {
    case Op::kSubmitBid:
    case Op::kUpdateBid:
    case Op::kWithdrawBid:
    case Op::kPostScores:
    case Op::kQueryWorker:
      return call_single(table_.shard_for(request.worker), request, out);
    case Op::kQueryRun:
      if (request.shard < 0 || request.shard >= table_.shards) {
        // The in-process router answers this inline; mirror its bytes.
        *out = Response::failure(request.id, "query_run: shard out of range");
        return true;
      }
      return call_single(request.shard, request, out);
    case Op::kCheckpoint:
      // Members all hold the full deployment config, so fanning the op out
      // would have every member clobber the same checkpoint path with a
      // partial view. The coordinator's publish op is the cluster-wide
      // snapshot.
      *out = Response::failure(request.id,
                               "checkpoint: use the coordinator's publish op");
      return true;
    case Op::kShardExport:
    case Op::kShardImport:
      *out = Response::failure(
          request.id, std::string(to_string(request.op)) +
                          ": coordinator-driven (migrate/publish)");
      return true;
    default:
      return call_broadcast(request, out);
  }
}

bool ClusterClient::call_single(int shard, const Request& request,
                                Response* out) {
  const int attempts = static_cast<int>(table_.members.size()) + 2;
  bool called = false;
  for (int i = 0; i < attempts; ++i) {
    if (shard < 0 || shard >= table_.shards) {
      error_ = "shard " + std::to_string(shard) + " out of range";
      return false;
    }
    const int m = table_.owner[static_cast<std::size_t>(shard)];
    if (m < 0 || m >= static_cast<int>(table_.members.size())) {
      if (!refresh_table()) {
        error_ = "shard " + std::to_string(shard) + " unowned (" + error_ +
                 ")";
        return called;
      }
      continue;
    }
    if (!data_(table_.members[static_cast<std::size_t>(m)], request, out)) {
      error_ = "member " +
               table_.members[static_cast<std::size_t>(m)].name +
               " unreachable";
      return false;
    }
    called = true;
    if (!out->ok && out->error == "not_owner") {
      // Mid-migration: the reply names the shard; the refreshed table
      // names its new owner. Best-effort refresh — without a control
      // channel the retry re-reads the (possibly hand-installed) table.
      shard = static_cast<int>(
          out->fields.number_or("shard", static_cast<double>(shard)));
      refresh_table();
      continue;
    }
    return true;
  }
  // Retries exhausted: surface the last (not_owner) reply to the caller.
  return called;
}

bool ClusterClient::call_broadcast(const Request& request, Response* out) {
  if (!table_.complete() && !(refresh_table() && table_.complete())) {
    error_ = "routing table incomplete";
    return false;
  }
  const int k = table_.shards;
  std::map<int, std::vector<int>> owned;  // member -> shards, ascending
  for (int s = 0; s < k; ++s) {
    owned[table_.owner[static_cast<std::size_t>(s)]].push_back(s);
  }
  if (k == 1) {
    // One shard, one owner: the member's reply IS the deployment's reply
    // (no re-homed blocks exist at K=1).
    const int m = owned.begin()->first;
    if (!data_(table_.members[static_cast<std::size_t>(m)], request, out)) {
      error_ = "member " +
               table_.members[static_cast<std::size_t>(m)].name +
               " unreachable";
      return false;
    }
    return true;
  }
  std::vector<std::pair<int, Response>> parts;  // (global shard, part)
  parts.reserve(static_cast<std::size_t>(k));
  std::string checkpoint;
  bool have_checkpoint = false;
  for (const auto& [m, shards] : owned) {
    const ClusterMember& member = table_.members[static_cast<std::size_t>(m)];
    Response reply;
    if (!data_(member, request, &reply)) {
      error_ = "member " + member.name + " unreachable";
      return false;
    }
    if (!reply.ok) {
      // Partial failure: surface the member's merged failure reply rather
      // than inventing one (happens only when a shard-level apply failed).
      *out = reply;
      return true;
    }
    for (const int g : shards) {
      parts.emplace_back(g, rehomed_part(reply, request.id, g));
    }
    if (!have_checkpoint && reply.fields.has("checkpoint")) {
      checkpoint = reply.fields.text("checkpoint");
      have_checkpoint = true;
    }
  }
  std::sort(parts.begin(), parts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Response> responses;
  std::vector<int> indices;
  responses.reserve(parts.size());
  indices.reserve(parts.size());
  for (auto& [g, part] : parts) {
    indices.push_back(g);
    responses.push_back(std::move(part));
  }
  // The exact merge a single-process deployment runs, over the exact same
  // per-shard parts in the exact same (global) order. rehome_all is off
  // here: that flag is the *member-side* encoding that preserved the parts
  // across the wire; the final client merge must be the standard one so
  // the reply's shape matches the single-process router byte for byte.
  Response merged = svc::merge_shard_parts(request.op, request.id, responses,
                                           indices, k, /*rehome_all=*/false);
  if (request.op == Op::kHello) {
    merged.fields.set("shards", WireValue::of(static_cast<std::int64_t>(k)));
    merged.fields.set("epoch", WireValue::of(table_.epoch));
  } else if (request.op == Op::kShutdown && have_checkpoint) {
    merged.fields.set("checkpoint", WireValue::of(checkpoint));
  }
  *out = merged;
  return true;
}

}  // namespace melody::cluster
