#include "cluster/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "cluster/routing.h"

namespace melody::cluster {

LineClient::~LineClient() { close(); }

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)),
      error_(std::move(other.error_)) {}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
    error_ = std::move(other.error_);
  }
  return *this;
}

bool LineClient::connect(const std::string& host, int port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    error_ = "bad host address: " + host;
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error_ = "connect " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return false;
  }
  fd_ = fd;
  buffer_.clear();
  return true;
}

void LineClient::close() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

bool LineClient::send_line(const std::string& line) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  const std::string framed = line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      error_ = std::string("send: ") + std::strerror(errno);
      close();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineClient::recv_line(std::string* line) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line->assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      error_ = n == 0 ? "connection closed"
                      : std::string("recv: ") + std::strerror(errno);
      close();
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool LineClient::exchange(const std::string& line, std::string* reply) {
  return send_line(line) && recv_line(reply);
}

namespace {

std::string endpoint_key(const ClusterMember& member) {
  return member.host + ":" + std::to_string(member.port);
}

}  // namespace

bool MemberPool::call(const ClusterMember& member, const svc::Request& request,
                      svc::Response* out) {
  const std::string key = endpoint_key(member);
  const std::string line = svc::format_request(request);
  std::string reply;
  // One redial: a cached fd may point at a process that has since been
  // killed and respawned on the same port — the first exchange fails on
  // the dead socket and the retry dials the live one.
  for (int attempt = 0; attempt < 2; ++attempt) {
    LineClient& conn = conns_[key];
    if (!conn.connected() && !conn.connect(member.host, member.port)) {
      error_ = member.name + ": " + conn.last_error();
      continue;
    }
    if (!conn.exchange(line, &reply)) {
      error_ = member.name + ": " + conn.last_error();
      continue;
    }
    try {
      *out = svc::parse_response(reply);
    } catch (const svc::WireError& e) {
      error_ = member.name + ": bad response line: " + e.what();
      return false;
    }
    return true;
  }
  return false;
}

void MemberPool::drop(const ClusterMember& member) {
  conns_.erase(endpoint_key(member));
}

}  // namespace melody::cluster
