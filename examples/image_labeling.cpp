// Image-labeling campaign: a requester outsources weekly batches of image
// labels for a year (52 runs) to a pool of annotators whose skill drifts —
// some are learning the ontology (rising), some burn out (declining).
//
// Demonstrates the long-term value of the LDS tracker through the public
// facade: the platform's estimates follow each annotator's drift, and the
// weekly number of satisfied label batches stays high even as the
// population changes underneath.
//
//   ./image_labeling
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/melody.h"
#include "sim/score_gen.h"
#include "sim/trajectory.h"
#include "util/rng.h"

int main() {
  using namespace melody;

  constexpr int kWeeks = 52;
  constexpr int kAnnotators = 24;
  constexpr int kBatchesPerWeek = 10;

  util::Rng rng(7);

  // Ground truth: each annotator has a true per-label cost, a weekly
  // capacity, and a latent skill trajectory the platform never sees.
  struct Annotator {
    auction::WorkerId id;
    auction::Bid bid;
    std::vector<double> skill;
  };
  std::vector<Annotator> annotators;
  for (int i = 0; i < kAnnotators; ++i) {
    const auto kind = sim::sample_kind({}, rng);
    const auto trajectory = sim::sample_config(kind, kWeeks, rng);
    annotators.push_back({static_cast<auction::WorkerId>(i),
                          {rng.uniform(1.0, 2.0),
                           static_cast<int>(rng.uniform_int(2, 4))},
                          sim::generate_trajectory(trajectory, kWeeks, rng)});
  }

  core::MelodyOptions options;
  options.theta_min = 1.0;
  options.theta_max = 10.0;
  options.cost_min = 0.5;
  options.cost_max = 3.0;
  options.tracker.reestimation_period = 8;  // re-fit LDS every 8 weeks
  core::Melody platform(options);

  const sim::ScoreModel score_model{2.0, 1.0, 10.0};

  std::printf("week | batches satisfied | total paid | tracking error\n");
  std::printf("-----+-------------------+------------+---------------\n");
  for (int week = 1; week <= kWeeks; ++week) {
    // Annotators bid truthfully (the mechanism gives them no reason not
    // to in this competitive pool).
    std::vector<core::BidSubmission> bids;
    for (const auto& a : annotators) bids.push_back({a.id, a.bid});

    // Ten label batches; each needs about three competent annotators.
    std::vector<auction::Task> batches;
    for (int b = 0; b < kBatchesPerWeek; ++b) {
      batches.push_back({b, rng.uniform(14.0, 20.0)});
    }
    const auto result = platform.run_auction(bids, batches, /*budget=*/40.0);

    // The requester spot-checks labels and scores each annotator's batch.
    for (const auto& a : annotators) {
      const int assigned = result.tasks_assigned_to(a.id);
      if (assigned > 0) {
        platform.submit_scores(
            a.id, sim::generate_scores(score_model,
                                       a.skill[static_cast<std::size_t>(
                                           week - 1)],
                                       assigned, rng));
      }
    }
    platform.end_run();

    // How well does the platform track true skill?
    double error = 0.0;
    for (const auto& a : annotators) {
      error += std::abs(platform.estimated_quality(a.id) -
                        a.skill[static_cast<std::size_t>(week - 1)]);
    }
    error /= kAnnotators;
    if (week % 4 == 0) {
      std::printf("%4d | %17zu | %10.2f | %13.3f\n", week,
                  result.requester_utility(), result.total_payment(), error);
    }
  }

  std::printf("\nfinal skill estimates vs truth (week %d):\n", kWeeks);
  for (int i = 0; i < 6; ++i) {
    const auto& a = annotators[static_cast<std::size_t>(i)];
    std::printf("  annotator %2d: estimated %.2f, true %.2f\n", a.id,
                platform.estimated_quality(a.id), a.skill.back());
  }
  return 0;
}
