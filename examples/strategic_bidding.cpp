// Strategic bidding playground: what happens to a worker who does not bid
// truthfully?
//
// One worker in a competitive single-task market sweeps his reported cost
// while everyone else stays truthful; the example prints his realized
// utility per report, visualizing the critical-value payment structure:
// a flat plateau at the truthful utility while he keeps winning, then a
// drop to zero once his report crosses the critical ratio. It then shows
// the multi-task caveat documented in DESIGN.md.
//
//   ./strategic_bidding
#include <cstdio>
#include <vector>

#include "auction/melody_auction.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace {

using namespace melody;

double utility_of(const auction::AllocationResult& result,
                  auction::WorkerId id, double true_cost) {
  return result.payment_to(id) - true_cost * result.tasks_assigned_to(id);
}

void sweep(const char* title, const sim::SraScenario& scenario,
           std::uint64_t seed) {
  util::Rng rng(seed);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  const auto config = scenario.auction_config();
  auction::MelodyAuction auction;
  const auto truthful = auction.run({workers, tasks, config});

  // Pick the first truthful winner as our strategist.
  std::size_t strategist = 0;
  while (strategist < workers.size() &&
         truthful.tasks_assigned_to(workers[strategist].id) == 0) {
    ++strategist;
  }
  if (strategist == workers.size()) {
    std::printf("%s: no winner to probe\n", title);
    return;
  }
  const double true_cost = workers[strategist].bid.cost;

  std::printf("%s\n", title);
  std::printf("strategist: worker %d, true cost %.3f, truthful utility "
              "%.4f\n",
              workers[strategist].id, true_cost,
              utility_of(truthful, workers[strategist].id, true_cost));
  std::printf("  reported cost | tasks won | utility\n");
  for (double factor = 0.7; factor <= 1.6; factor += 0.15) {
    auto reports = workers;
    reports[strategist].bid.cost = true_cost * factor;
    const auto outcome = auction.run({reports, tasks, config});
    std::printf("  %13.3f | %9d | %7.4f\n", reports[strategist].bid.cost,
                outcome.tasks_assigned_to(workers[strategist].id),
                utility_of(outcome, workers[strategist].id, true_cost));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Single-task market: the critical-value payment makes truth-telling a
  // dominant strategy — the utility column is flat until the strategist
  // prices himself out, and never exceeds the truthful value.
  sim::SraScenario single;
  single.num_workers = 20;
  single.num_tasks = 1;
  single.budget = 1000.0;
  sweep("=== single-task market (truthfulness holds exactly) ===", single,
        11);

  // Multi-task market: the portfolio caveat. With many tasks and limited
  // frequency, a mild overbid can shift the strategist toward later,
  // better-paying tasks (see DESIGN.md) — a deviation from the paper's
  // Theorem 4 that this library reports rather than hides.
  sim::SraScenario multi;
  multi.num_workers = 60;
  multi.num_tasks = 40;
  multi.budget = 120.0;
  sweep("=== multi-task market (portfolio caveat can appear) ===", multi, 12);

  std::printf("takeaway: deploy MELODY with per-run task batches that are\n"
              "small relative to worker frequency, or audit bids against\n"
              "the ablation bench bench_ablation_truthfulness_gap.\n");
  return 0;
}
