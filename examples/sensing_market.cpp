// Mobile crowdsensing market with worker churn.
//
// A municipality buys air-quality readings every hour. Sensing workers
// join the platform over time (newcomers start from the preset prior) and
// their measurement quality drifts as phone sensors age. The example runs
// the full simulation Platform with two different quality-updating methods
// — the paper's STATIC baseline and MELODY's LDS tracker — on identical
// populations and prints the side-by-side outcome, a miniature of the
// Fig. 9 experiment with churn added.
//
//   ./sensing_market
#include <cstdio>
#include <memory>
#include <vector>

#include "auction/melody_auction.h"
#include "estimators/melody_estimator.h"
#include "estimators/static_estimator.h"
#include "sim/metrics.h"
#include "sim/platform.h"

namespace {

using namespace melody;

sim::LongTermScenario market_scenario() {
  sim::LongTermScenario s;
  s.num_workers = 50;      // initial worker pool
  s.num_tasks = 40;        // sensing cells per hour
  s.runs = 240;            // ten days of hourly rounds
  s.budget = 160.0;
  s.mix = {0.35, 0.35, 0.2, 0.1};
  return s;
}

struct Outcome {
  sim::MetricSummary summary;
  std::size_t final_pool = 0;
};

Outcome run_market(estimators::QualityEstimator& estimator) {
  const auto scenario = market_scenario();
  auction::MelodyAuction mechanism;
  util::Rng rng(2024);  // identical population for both estimators
  sim::Platform platform(
      scenario, mechanism, estimator,
      sim::sample_population(scenario.population_config(), rng), 77);

  util::Rng churn_rng(31);
  std::vector<sim::RunRecord> records;
  auction::WorkerId next_id = 1000;
  for (int run = 0; run < scenario.runs; ++run) {
    // Churn: roughly one new sensing worker joins every ~8 hours.
    if (churn_rng.bernoulli(0.125)) {
      const auto kind = sim::sample_kind(scenario.mix, churn_rng);
      const auto trajectory =
          sim::sample_config(kind, scenario.runs, churn_rng);
      platform.add_worker(sim::SimWorker(
          next_id++,
          {churn_rng.uniform(1.0, 2.0),
           static_cast<int>(churn_rng.uniform_int(1, 5))},
          sim::generate_trajectory(trajectory, scenario.runs, churn_rng)));
    }
    records.push_back(platform.step());
  }
  return {sim::summarize_after(records, 40), platform.workers().size()};
}

}  // namespace

int main() {
  const auto scenario = market_scenario();

  estimators::StaticEstimator static_estimator(scenario.initial_mu, 50);
  const Outcome static_outcome = run_market(static_estimator);

  estimators::MelodyEstimatorConfig tracker;
  tracker.initial_posterior = {scenario.initial_mu, scenario.initial_sigma};
  tracker.reestimation_period = scenario.reestimation_period;
  estimators::MelodyEstimator melody_estimator(tracker);
  const Outcome melody_outcome = run_market(melody_estimator);

  std::printf("ten-day sensing market, hourly auctions, worker churn "
              "(final pool: %zu workers)\n\n",
              melody_outcome.final_pool);
  std::printf("%-28s %12s %12s\n", "", "STATIC", "MELODY");
  std::printf("%-28s %12.1f %12.1f\n", "satisfied cells per hour",
              static_outcome.summary.mean_true_utility,
              melody_outcome.summary.mean_true_utility);
  std::printf("%-28s %12.3f %12.3f\n", "quality tracking error",
              static_outcome.summary.mean_estimation_error,
              melody_outcome.summary.mean_estimation_error);
  std::printf("%-28s %12.1f %12.1f\n", "hourly payout",
              static_outcome.summary.mean_total_payment,
              melody_outcome.summary.mean_total_payment);
  std::printf("\nthe LDS tracker keeps following drifting sensors and "
              "folds newcomers in from the shared prior, so the same "
              "budget satisfies more sensing cells.\n");
  return 0;
}
