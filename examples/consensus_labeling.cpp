// Consensus labeling without ground truth.
//
// End-to-end realistic deployment: the requester cannot grade answers, so
// scores come from weighted majority voting over redundant labels
// (paper footnote 5). Each run:
//   1. MELODY's auction picks a crowd per labeling batch,
//   2. workers emit labels with accuracy tied to their hidden skill,
//   3. labels are aggregated by estimate-weighted majority voting,
//   4. agreement with the consensus becomes the score fed to the tracker.
// The example reports consensus accuracy (measured against the hidden
// truth) improving as the tracker learns who the experts are.
//
//   ./consensus_labeling
#include <cstdio>
#include <vector>

#include "core/melody.h"
#include "sim/labeling.h"
#include "sim/trajectory.h"
#include "util/rng.h"

int main() {
  using namespace melody;

  constexpr int kRuns = 120;
  constexpr int kWorkers = 30;
  constexpr int kTasksPerRun = 12;
  constexpr int kClasses = 4;

  util::Rng rng(21);

  // Hidden ground truth: stable experts, stable spammers, and learners.
  struct Annotator {
    auction::WorkerId id;
    auction::Bid bid;
    std::vector<double> skill;
  };
  std::vector<Annotator> annotators;
  for (int i = 0; i < kWorkers; ++i) {
    sim::TrajectoryConfig trajectory;
    if (i % 3 == 0) {  // expert
      trajectory.kind = sim::TrajectoryKind::kStable;
      trajectory.start_level = rng.uniform(8.0, 9.5);
    } else if (i % 3 == 1) {  // spammer
      trajectory.kind = sim::TrajectoryKind::kStable;
      trajectory.start_level = rng.uniform(1.5, 3.0);
    } else {  // learner
      trajectory.kind = sim::TrajectoryKind::kRising;
      trajectory.start_level = rng.uniform(2.0, 4.0);
      trajectory.swing = 5.0;
      trajectory.horizon = kRuns;
    }
    annotators.push_back({static_cast<auction::WorkerId>(i),
                          {rng.uniform(1.0, 2.0), 3},
                          sim::generate_trajectory(trajectory, kRuns, rng)});
  }

  core::MelodyOptions options;
  options.theta_min = 1.0;
  options.theta_max = 10.0;
  options.cost_min = 0.5;
  options.cost_max = 3.0;
  core::Melody platform(options);
  const sim::LabelingModel labeling;

  std::printf("run  | consensus accuracy | batches served\n");
  std::printf("-----+--------------------+---------------\n");
  int window_correct = 0, window_total = 0;
  for (int run = 1; run <= kRuns; ++run) {
    std::vector<core::BidSubmission> bids;
    for (const auto& a : annotators) bids.push_back({a.id, a.bid});
    std::vector<auction::Task> batches;
    for (int b = 0; b < kTasksPerRun; ++b) {
      batches.push_back({b, 18.0});  // ~3 competent annotators each
    }
    const auto result = platform.run_auction(bids, batches, /*budget=*/80.0);

    for (const auto& batch : batches) {
      const auto crowd = result.workers_of(batch.id);
      if (crowd.empty()) continue;
      sim::LabelingTask task{batch.id, kClasses,
                             static_cast<int>(rng.uniform_int(0, kClasses - 1))};
      std::vector<double> skills, weights;
      for (auction::WorkerId w : crowd) {
        skills.push_back(
            annotators[static_cast<std::size_t>(w)].skill[run - 1]);
        weights.push_back(platform.estimated_quality(w));
      }
      const sim::TaskOutcome outcome =
          sim::run_labeling_task(labeling, task, crowd, skills, weights, rng);
      ++window_total;
      window_correct += outcome.aggregate_correct ? 1 : 0;
      for (std::size_t l = 0; l < outcome.labels.size(); ++l) {
        lds::ScoreSet score;
        score.add(outcome.scores[l]);
        platform.submit_scores(outcome.labels[l].worker, score);
      }
    }
    platform.end_run();

    if (run % 20 == 0) {
      std::printf("%4d | %17.1f%% | %14zu\n", run,
                  100.0 * window_correct / std::max(1, window_total),
                  result.requester_utility());
      window_correct = window_total = 0;
    }
  }

  std::printf("\nlearned estimates (experts should be high, spammers low):\n");
  for (int i = 0; i < 9; ++i) {
    const char* role = i % 3 == 0 ? "expert " : (i % 3 == 1 ? "spammer" : "learner");
    std::printf("  %s %2d: estimate %.2f, true skill %.2f\n", role, i,
                platform.estimated_quality(i),
                annotators[static_cast<std::size_t>(i)].skill.back());
  }
  return 0;
}
