// Multi-skill marketplace: one worker pool, two task types (Section 3.1).
//
// Image labeling and audio transcription run as independent MELODY markets
// with per-type quality tracking. Workers have different skills per type —
// a great labeler can be a poor transcriber — and the per-type trackers
// discover this from scores alone.
//
//   ./multi_skill_marketplace
#include <cstdio>
#include <vector>

#include "core/multi_type.h"
#include "sim/score_gen.h"
#include "util/rng.h"

int main() {
  using namespace melody;

  constexpr int kRuns = 60;
  constexpr int kWorkers = 20;
  util::Rng rng(33);

  core::MelodyOptions options;
  options.theta_min = 1.0;
  options.theta_max = 10.0;
  options.cost_min = 0.5;
  options.cost_max = 3.0;
  // Budget is scarce here, so turn on the exploration bonus: workers whose
  // estimate collapsed early get re-tried instead of starving.
  options.tracker.exploration_beta = 0.5;
  core::MultiTypeMarket marketplace(options);
  marketplace.add_type("labeling");
  marketplace.add_type("transcription");

  // Ground truth: independent per-type skills and a shared cost.
  struct Worker {
    auction::Bid bid;
    double labeling_skill;
    double transcription_skill;
  };
  std::vector<Worker> workers;
  for (int i = 0; i < kWorkers; ++i) {
    workers.push_back({{rng.uniform(1.0, 2.0), 2},
                       rng.uniform(2.0, 9.5),
                       rng.uniform(2.0, 9.5)});
  }

  const sim::ScoreModel scores{1.5, 1.0, 10.0};
  for (int run = 1; run <= kRuns; ++run) {
    for (const char* type : {"labeling", "transcription"}) {
      auto& market = marketplace.market(type);
      std::vector<core::BidSubmission> bids;
      for (int i = 0; i < kWorkers; ++i) {
        bids.push_back({static_cast<auction::WorkerId>(i), workers[i].bid});
      }
      std::vector<auction::Task> tasks;
      for (int t = 0; t < 6; ++t) tasks.push_back({t, 14.0});
      const auto result = market.run_auction(bids, tasks, /*budget=*/30.0);
      for (int i = 0; i < kWorkers; ++i) {
        const int assigned = result.tasks_assigned_to(i);
        if (assigned == 0) continue;
        const auto& w = workers[static_cast<std::size_t>(i)];
        const double skill = std::string(type) == "labeling"
                                 ? w.labeling_skill
                                 : w.transcription_skill;
        market.submit_scores(i, sim::generate_scores(scores, skill, assigned,
                                                     rng));
      }
    }
    marketplace.end_run();
  }

  std::printf("per-type quality profiles after %d runs:\n", kRuns);
  std::printf("worker | labeling est/true | transcription est/true\n");
  std::printf("-------+-------------------+-----------------------\n");
  for (int i = 0; i < 8; ++i) {
    const auto profile = marketplace.quality_profile(i);
    const auto& w = workers[static_cast<std::size_t>(i)];
    std::printf("%6d | %8.2f / %5.2f | %12.2f / %5.2f\n", i,
                profile.count("labeling") ? profile.at("labeling") : 0.0,
                w.labeling_skill,
                profile.count("transcription") ? profile.at("transcription")
                                               : 0.0,
                w.transcription_skill);
  }
  std::printf("\n(the two estimates for the same worker diverge to match "
              "his type-specific skills — one market per type, as Section "
              "3.1 prescribes)\n");
  return 0;
}
