// Quickstart: the MELODY platform in one run.
//
// Shows the full Fig. 2 workflow through the public facade
// (melody::core::Melody): workers submit bids, the requester posts tasks
// with a budget, the platform allocates and prices, the requester scores
// the answers, and the platform updates every worker's quality posterior
// for the next run.
//
//   ./quickstart
#include <cstdio>
#include <vector>

#include "core/melody.h"

int main() {
  using namespace melody;

  // A platform that accepts quality estimates in [1, 10] and bids of cost
  // in [0.5, 5]; the quality tracker starts every newcomer at N(5.5, 2.25)
  // and re-fits his LDS hyper-parameters every 10 runs.
  core::MelodyOptions options;
  options.theta_min = 1.0;
  options.theta_max = 10.0;
  options.cost_min = 0.5;
  options.cost_max = 5.0;
  core::Melody platform(options);

  // --- Run 1: five workers bid on three proofreading tasks. -------------
  const std::vector<core::BidSubmission> bids{
      {/*worker=*/1, {/*cost=*/1.0, /*frequency=*/2}},
      {2, {1.2, 2}},
      {3, {1.5, 3}},
      {4, {2.0, 1}},
      {5, {2.5, 2}},
  };
  // Each task needs total estimated quality of 9-11 "points".
  const std::vector<auction::Task> tasks{{101, 9.0}, {102, 10.0}, {103, 11.0}};
  const double budget = 12.0;

  const auction::AllocationResult result =
      platform.run_auction(bids, tasks, budget);

  std::printf("run 1: %zu of %zu tasks satisfied within budget %.1f "
              "(total payment %.2f)\n",
              result.requester_utility(), tasks.size(), budget,
              result.total_payment());
  for (const auto& a : result.assignments) {
    std::printf("  worker %d -> task %d, paid %.3f\n", a.worker, a.task,
                a.payment);
  }

  // --- The requester verifies the answers and scores them (1-10). -------
  for (const auto& a : result.assignments) {
    lds::ScoreSet scores;
    scores.add(a.worker <= 2 ? 7.5 : 5.0);  // workers 1-2 did better
    platform.submit_scores(a.worker, scores);
  }
  platform.end_run();

  // --- Quality estimates have moved for the next auction. ---------------
  std::printf("\nquality estimates for run 2:\n");
  for (const auto& bid : bids) {
    std::printf("  worker %d: mu = %.3f\n", bid.worker,
                platform.estimated_quality(bid.worker));
  }
  std::printf("\n(workers who scored 7.5 rose above the 5.5 prior; workers "
              "who scored 5.0 fell; idle workers kept the prior)\n");
  return 0;
}
