file(REMOVE_RECURSE
  "CMakeFiles/test_dbp.dir/test_dbp.cc.o"
  "CMakeFiles/test_dbp.dir/test_dbp.cc.o.d"
  "test_dbp"
  "test_dbp.pdb"
  "test_dbp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
