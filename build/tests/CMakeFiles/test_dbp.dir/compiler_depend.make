# Empty compiler generated dependencies file for test_dbp.
# This may be replaced when dependencies are built.
