file(REMOVE_RECURSE
  "CMakeFiles/test_multi_type.dir/test_multi_type.cc.o"
  "CMakeFiles/test_multi_type.dir/test_multi_type.cc.o.d"
  "test_multi_type"
  "test_multi_type.pdb"
  "test_multi_type[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
