# Empty dependencies file for test_multi_type.
# This may be replaced when dependencies are built.
