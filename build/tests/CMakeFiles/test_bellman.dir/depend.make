# Empty dependencies file for test_bellman.
# This may be replaced when dependencies are built.
