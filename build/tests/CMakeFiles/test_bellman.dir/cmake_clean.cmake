file(REMOVE_RECURSE
  "CMakeFiles/test_bellman.dir/test_bellman.cc.o"
  "CMakeFiles/test_bellman.dir/test_bellman.cc.o.d"
  "test_bellman"
  "test_bellman.pdb"
  "test_bellman[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bellman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
