file(REMOVE_RECURSE
  "CMakeFiles/test_score_gen.dir/test_score_gen.cc.o"
  "CMakeFiles/test_score_gen.dir/test_score_gen.cc.o.d"
  "test_score_gen"
  "test_score_gen.pdb"
  "test_score_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_score_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
