# Empty compiler generated dependencies file for test_score_gen.
# This may be replaced when dependencies are built.
