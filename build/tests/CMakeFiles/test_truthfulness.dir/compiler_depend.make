# Empty compiler generated dependencies file for test_truthfulness.
# This may be replaced when dependencies are built.
