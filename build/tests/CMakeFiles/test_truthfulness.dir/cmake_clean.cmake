file(REMOVE_RECURSE
  "CMakeFiles/test_truthfulness.dir/test_truthfulness.cc.o"
  "CMakeFiles/test_truthfulness.dir/test_truthfulness.cc.o.d"
  "test_truthfulness"
  "test_truthfulness.pdb"
  "test_truthfulness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_truthfulness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
