# Empty dependencies file for test_integration_longterm.
# This may be replaced when dependencies are built.
