file(REMOVE_RECURSE
  "CMakeFiles/test_integration_longterm.dir/test_integration_longterm.cc.o"
  "CMakeFiles/test_integration_longterm.dir/test_integration_longterm.cc.o.d"
  "test_integration_longterm"
  "test_integration_longterm.pdb"
  "test_integration_longterm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_longterm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
