# Empty dependencies file for test_opt_bounds.
# This may be replaced when dependencies are built.
