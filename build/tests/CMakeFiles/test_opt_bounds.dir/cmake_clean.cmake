file(REMOVE_RECURSE
  "CMakeFiles/test_opt_bounds.dir/test_opt_bounds.cc.o"
  "CMakeFiles/test_opt_bounds.dir/test_opt_bounds.cc.o.d"
  "test_opt_bounds"
  "test_opt_bounds.pdb"
  "test_opt_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
