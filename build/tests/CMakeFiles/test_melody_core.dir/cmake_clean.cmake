file(REMOVE_RECURSE
  "CMakeFiles/test_melody_core.dir/test_melody_core.cc.o"
  "CMakeFiles/test_melody_core.dir/test_melody_core.cc.o.d"
  "test_melody_core"
  "test_melody_core.pdb"
  "test_melody_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_melody_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
