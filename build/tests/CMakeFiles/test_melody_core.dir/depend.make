# Empty dependencies file for test_melody_core.
# This may be replaced when dependencies are built.
