# Empty compiler generated dependencies file for test_gaussian.
# This may be replaced when dependencies are built.
