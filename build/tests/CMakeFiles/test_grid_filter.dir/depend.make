# Empty dependencies file for test_grid_filter.
# This may be replaced when dependencies are built.
