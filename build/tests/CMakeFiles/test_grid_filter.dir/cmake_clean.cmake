file(REMOVE_RECURSE
  "CMakeFiles/test_grid_filter.dir/test_grid_filter.cc.o"
  "CMakeFiles/test_grid_filter.dir/test_grid_filter.cc.o.d"
  "test_grid_filter"
  "test_grid_filter.pdb"
  "test_grid_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
