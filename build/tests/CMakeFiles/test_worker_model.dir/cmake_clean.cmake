file(REMOVE_RECURSE
  "CMakeFiles/test_worker_model.dir/test_worker_model.cc.o"
  "CMakeFiles/test_worker_model.dir/test_worker_model.cc.o.d"
  "test_worker_model"
  "test_worker_model.pdb"
  "test_worker_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_worker_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
