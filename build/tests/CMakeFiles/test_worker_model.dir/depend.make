# Empty dependencies file for test_worker_model.
# This may be replaced when dependencies are built.
