# Empty compiler generated dependencies file for test_melody_auction.
# This may be replaced when dependencies are built.
