file(REMOVE_RECURSE
  "CMakeFiles/test_melody_auction.dir/test_melody_auction.cc.o"
  "CMakeFiles/test_melody_auction.dir/test_melody_auction.cc.o.d"
  "test_melody_auction"
  "test_melody_auction.pdb"
  "test_melody_auction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_melody_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
