# Empty dependencies file for test_random_auction.
# This may be replaced when dependencies are built.
