file(REMOVE_RECURSE
  "CMakeFiles/test_random_auction.dir/test_random_auction.cc.o"
  "CMakeFiles/test_random_auction.dir/test_random_auction.cc.o.d"
  "test_random_auction"
  "test_random_auction.pdb"
  "test_random_auction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
