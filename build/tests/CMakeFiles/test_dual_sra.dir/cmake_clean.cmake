file(REMOVE_RECURSE
  "CMakeFiles/test_dual_sra.dir/test_dual_sra.cc.o"
  "CMakeFiles/test_dual_sra.dir/test_dual_sra.cc.o.d"
  "test_dual_sra"
  "test_dual_sra.pdb"
  "test_dual_sra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dual_sra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
