# Empty dependencies file for test_dual_sra.
# This may be replaced when dependencies are built.
