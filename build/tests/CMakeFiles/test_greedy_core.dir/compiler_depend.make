# Empty compiler generated dependencies file for test_greedy_core.
# This may be replaced when dependencies are built.
