file(REMOVE_RECURSE
  "CMakeFiles/test_greedy_core.dir/test_greedy_core.cc.o"
  "CMakeFiles/test_greedy_core.dir/test_greedy_core.cc.o.d"
  "test_greedy_core"
  "test_greedy_core.pdb"
  "test_greedy_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_greedy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
