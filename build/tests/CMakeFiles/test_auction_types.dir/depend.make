# Empty dependencies file for test_auction_types.
# This may be replaced when dependencies are built.
