file(REMOVE_RECURSE
  "CMakeFiles/test_auction_types.dir/test_auction_types.cc.o"
  "CMakeFiles/test_auction_types.dir/test_auction_types.cc.o.d"
  "test_auction_types"
  "test_auction_types.pdb"
  "test_auction_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auction_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
