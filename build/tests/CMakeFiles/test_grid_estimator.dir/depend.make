# Empty dependencies file for test_grid_estimator.
# This may be replaced when dependencies are built.
