file(REMOVE_RECURSE
  "CMakeFiles/test_grid_estimator.dir/test_grid_estimator.cc.o"
  "CMakeFiles/test_grid_estimator.dir/test_grid_estimator.cc.o.d"
  "test_grid_estimator"
  "test_grid_estimator.pdb"
  "test_grid_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
