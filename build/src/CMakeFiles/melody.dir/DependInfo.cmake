
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/auction/dbp.cc" "src/CMakeFiles/melody.dir/auction/dbp.cc.o" "gcc" "src/CMakeFiles/melody.dir/auction/dbp.cc.o.d"
  "/root/repo/src/auction/dual_sra.cc" "src/CMakeFiles/melody.dir/auction/dual_sra.cc.o" "gcc" "src/CMakeFiles/melody.dir/auction/dual_sra.cc.o.d"
  "/root/repo/src/auction/exact_sra.cc" "src/CMakeFiles/melody.dir/auction/exact_sra.cc.o" "gcc" "src/CMakeFiles/melody.dir/auction/exact_sra.cc.o.d"
  "/root/repo/src/auction/greedy_core.cc" "src/CMakeFiles/melody.dir/auction/greedy_core.cc.o" "gcc" "src/CMakeFiles/melody.dir/auction/greedy_core.cc.o.d"
  "/root/repo/src/auction/melody_auction.cc" "src/CMakeFiles/melody.dir/auction/melody_auction.cc.o" "gcc" "src/CMakeFiles/melody.dir/auction/melody_auction.cc.o.d"
  "/root/repo/src/auction/opt_ub.cc" "src/CMakeFiles/melody.dir/auction/opt_ub.cc.o" "gcc" "src/CMakeFiles/melody.dir/auction/opt_ub.cc.o.d"
  "/root/repo/src/auction/random_auction.cc" "src/CMakeFiles/melody.dir/auction/random_auction.cc.o" "gcc" "src/CMakeFiles/melody.dir/auction/random_auction.cc.o.d"
  "/root/repo/src/auction/types.cc" "src/CMakeFiles/melody.dir/auction/types.cc.o" "gcc" "src/CMakeFiles/melody.dir/auction/types.cc.o.d"
  "/root/repo/src/core/bellman.cc" "src/CMakeFiles/melody.dir/core/bellman.cc.o" "gcc" "src/CMakeFiles/melody.dir/core/bellman.cc.o.d"
  "/root/repo/src/core/melody.cc" "src/CMakeFiles/melody.dir/core/melody.cc.o" "gcc" "src/CMakeFiles/melody.dir/core/melody.cc.o.d"
  "/root/repo/src/core/multi_type.cc" "src/CMakeFiles/melody.dir/core/multi_type.cc.o" "gcc" "src/CMakeFiles/melody.dir/core/multi_type.cc.o.d"
  "/root/repo/src/estimators/grid_estimator.cc" "src/CMakeFiles/melody.dir/estimators/grid_estimator.cc.o" "gcc" "src/CMakeFiles/melody.dir/estimators/grid_estimator.cc.o.d"
  "/root/repo/src/estimators/melody_estimator.cc" "src/CMakeFiles/melody.dir/estimators/melody_estimator.cc.o" "gcc" "src/CMakeFiles/melody.dir/estimators/melody_estimator.cc.o.d"
  "/root/repo/src/estimators/ml_ar_estimator.cc" "src/CMakeFiles/melody.dir/estimators/ml_ar_estimator.cc.o" "gcc" "src/CMakeFiles/melody.dir/estimators/ml_ar_estimator.cc.o.d"
  "/root/repo/src/estimators/ml_cr_estimator.cc" "src/CMakeFiles/melody.dir/estimators/ml_cr_estimator.cc.o" "gcc" "src/CMakeFiles/melody.dir/estimators/ml_cr_estimator.cc.o.d"
  "/root/repo/src/estimators/static_estimator.cc" "src/CMakeFiles/melody.dir/estimators/static_estimator.cc.o" "gcc" "src/CMakeFiles/melody.dir/estimators/static_estimator.cc.o.d"
  "/root/repo/src/lds/em.cc" "src/CMakeFiles/melody.dir/lds/em.cc.o" "gcc" "src/CMakeFiles/melody.dir/lds/em.cc.o.d"
  "/root/repo/src/lds/gaussian.cc" "src/CMakeFiles/melody.dir/lds/gaussian.cc.o" "gcc" "src/CMakeFiles/melody.dir/lds/gaussian.cc.o.d"
  "/root/repo/src/lds/grid_filter.cc" "src/CMakeFiles/melody.dir/lds/grid_filter.cc.o" "gcc" "src/CMakeFiles/melody.dir/lds/grid_filter.cc.o.d"
  "/root/repo/src/lds/kalman.cc" "src/CMakeFiles/melody.dir/lds/kalman.cc.o" "gcc" "src/CMakeFiles/melody.dir/lds/kalman.cc.o.d"
  "/root/repo/src/lds/smoother.cc" "src/CMakeFiles/melody.dir/lds/smoother.cc.o" "gcc" "src/CMakeFiles/melody.dir/lds/smoother.cc.o.d"
  "/root/repo/src/sim/analytics.cc" "src/CMakeFiles/melody.dir/sim/analytics.cc.o" "gcc" "src/CMakeFiles/melody.dir/sim/analytics.cc.o.d"
  "/root/repo/src/sim/labeling.cc" "src/CMakeFiles/melody.dir/sim/labeling.cc.o" "gcc" "src/CMakeFiles/melody.dir/sim/labeling.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/melody.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/melody.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/platform.cc" "src/CMakeFiles/melody.dir/sim/platform.cc.o" "gcc" "src/CMakeFiles/melody.dir/sim/platform.cc.o.d"
  "/root/repo/src/sim/scenario.cc" "src/CMakeFiles/melody.dir/sim/scenario.cc.o" "gcc" "src/CMakeFiles/melody.dir/sim/scenario.cc.o.d"
  "/root/repo/src/sim/score_gen.cc" "src/CMakeFiles/melody.dir/sim/score_gen.cc.o" "gcc" "src/CMakeFiles/melody.dir/sim/score_gen.cc.o.d"
  "/root/repo/src/sim/trajectory.cc" "src/CMakeFiles/melody.dir/sim/trajectory.cc.o" "gcc" "src/CMakeFiles/melody.dir/sim/trajectory.cc.o.d"
  "/root/repo/src/sim/worker_model.cc" "src/CMakeFiles/melody.dir/sim/worker_model.cc.o" "gcc" "src/CMakeFiles/melody.dir/sim/worker_model.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/melody.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/melody.dir/util/csv.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/melody.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/melody.dir/util/flags.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/melody.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/melody.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/melody.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/melody.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/melody.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/melody.dir/util/stats.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/melody.dir/util/table.cc.o" "gcc" "src/CMakeFiles/melody.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
