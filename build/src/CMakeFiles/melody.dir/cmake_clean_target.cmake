file(REMOVE_RECURSE
  "libmelody.a"
)
