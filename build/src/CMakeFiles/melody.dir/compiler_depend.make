# Empty compiler generated dependencies file for melody.
# This may be replaced when dependencies are built.
