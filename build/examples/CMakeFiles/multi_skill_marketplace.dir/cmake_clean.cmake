file(REMOVE_RECURSE
  "CMakeFiles/multi_skill_marketplace.dir/multi_skill_marketplace.cpp.o"
  "CMakeFiles/multi_skill_marketplace.dir/multi_skill_marketplace.cpp.o.d"
  "multi_skill_marketplace"
  "multi_skill_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_skill_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
