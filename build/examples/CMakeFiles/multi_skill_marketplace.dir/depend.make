# Empty dependencies file for multi_skill_marketplace.
# This may be replaced when dependencies are built.
