# Empty dependencies file for strategic_bidding.
# This may be replaced when dependencies are built.
