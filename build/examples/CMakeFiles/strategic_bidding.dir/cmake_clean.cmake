file(REMOVE_RECURSE
  "CMakeFiles/strategic_bidding.dir/strategic_bidding.cpp.o"
  "CMakeFiles/strategic_bidding.dir/strategic_bidding.cpp.o.d"
  "strategic_bidding"
  "strategic_bidding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategic_bidding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
