# Empty dependencies file for sensing_market.
# This may be replaced when dependencies are built.
