file(REMOVE_RECURSE
  "CMakeFiles/sensing_market.dir/sensing_market.cpp.o"
  "CMakeFiles/sensing_market.dir/sensing_market.cpp.o.d"
  "sensing_market"
  "sensing_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensing_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
