# Empty dependencies file for consensus_labeling.
# This may be replaced when dependencies are built.
