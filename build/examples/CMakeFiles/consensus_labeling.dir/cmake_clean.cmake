file(REMOVE_RECURSE
  "CMakeFiles/consensus_labeling.dir/consensus_labeling.cpp.o"
  "CMakeFiles/consensus_labeling.dir/consensus_labeling.cpp.o.d"
  "consensus_labeling"
  "consensus_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consensus_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
