# Empty dependencies file for bench_theorem5_value_iteration.
# This may be replaced when dependencies are built.
