file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem5_value_iteration.dir/bench_theorem5_value_iteration.cc.o"
  "CMakeFiles/bench_theorem5_value_iteration.dir/bench_theorem5_value_iteration.cc.o.d"
  "bench_theorem5_value_iteration"
  "bench_theorem5_value_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem5_value_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
