# Empty dependencies file for bench_fig7_long_term_truth.
# This may be replaced when dependencies are built.
