# Empty compiler generated dependencies file for bench_fig9_longterm_quality.
# This may be replaced when dependencies are built.
