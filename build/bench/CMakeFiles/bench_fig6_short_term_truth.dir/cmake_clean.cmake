file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_short_term_truth.dir/bench_fig6_short_term_truth.cc.o"
  "CMakeFiles/bench_fig6_short_term_truth.dir/bench_fig6_short_term_truth.cc.o.d"
  "bench_fig6_short_term_truth"
  "bench_fig6_short_term_truth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_short_term_truth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
