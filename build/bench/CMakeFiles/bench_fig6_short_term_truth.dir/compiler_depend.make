# Empty compiler generated dependencies file for bench_fig6_short_term_truth.
# This may be replaced when dependencies are built.
