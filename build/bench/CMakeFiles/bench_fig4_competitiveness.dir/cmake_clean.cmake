file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_competitiveness.dir/bench_fig4_competitiveness.cc.o"
  "CMakeFiles/bench_fig4_competitiveness.dir/bench_fig4_competitiveness.cc.o.d"
  "bench_fig4_competitiveness"
  "bench_fig4_competitiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_competitiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
