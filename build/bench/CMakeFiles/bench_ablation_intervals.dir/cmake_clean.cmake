file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_intervals.dir/bench_ablation_intervals.cc.o"
  "CMakeFiles/bench_ablation_intervals.dir/bench_ablation_intervals.cc.o.d"
  "bench_ablation_intervals"
  "bench_ablation_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
