file(REMOVE_RECURSE
  "CMakeFiles/bench_dual_frontier.dir/bench_dual_frontier.cc.o"
  "CMakeFiles/bench_dual_frontier.dir/bench_dual_frontier.cc.o.d"
  "bench_dual_frontier"
  "bench_dual_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dual_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
