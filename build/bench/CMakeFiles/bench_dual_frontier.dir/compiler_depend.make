# Empty compiler generated dependencies file for bench_dual_frontier.
# This may be replaced when dependencies are built.
