# Empty compiler generated dependencies file for bench_fig5_ir_budget.
# This may be replaced when dependencies are built.
