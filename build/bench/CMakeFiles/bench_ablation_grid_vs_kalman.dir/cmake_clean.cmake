file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_grid_vs_kalman.dir/bench_ablation_grid_vs_kalman.cc.o"
  "CMakeFiles/bench_ablation_grid_vs_kalman.dir/bench_ablation_grid_vs_kalman.cc.o.d"
  "bench_ablation_grid_vs_kalman"
  "bench_ablation_grid_vs_kalman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_grid_vs_kalman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
