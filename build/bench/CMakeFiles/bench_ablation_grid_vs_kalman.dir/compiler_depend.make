# Empty compiler generated dependencies file for bench_ablation_grid_vs_kalman.
# This may be replaced when dependencies are built.
