# Empty dependencies file for bench_ablation_scores_per_run.
# This may be replaced when dependencies are built.
