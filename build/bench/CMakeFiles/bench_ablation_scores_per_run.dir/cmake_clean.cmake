file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scores_per_run.dir/bench_ablation_scores_per_run.cc.o"
  "CMakeFiles/bench_ablation_scores_per_run.dir/bench_ablation_scores_per_run.cc.o.d"
  "bench_ablation_scores_per_run"
  "bench_ablation_scores_per_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scores_per_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
