# Empty dependencies file for bench_ablation_truthfulness_gap.
# This may be replaced when dependencies are built.
