# Empty dependencies file for bench_fig1_trajectories.
# This may be replaced when dependencies are built.
