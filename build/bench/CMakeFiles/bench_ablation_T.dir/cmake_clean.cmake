file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_T.dir/bench_ablation_T.cc.o"
  "CMakeFiles/bench_ablation_T.dir/bench_ablation_T.cc.o.d"
  "bench_ablation_T"
  "bench_ablation_T.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_T.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
