# Empty compiler generated dependencies file for bench_ablation_T.
# This may be replaced when dependencies are built.
