file(REMOVE_RECURSE
  "CMakeFiles/melody_audit.dir/melody_audit.cc.o"
  "CMakeFiles/melody_audit.dir/melody_audit.cc.o.d"
  "melody_audit"
  "melody_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/melody_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
