# Empty dependencies file for melody_audit.
# This may be replaced when dependencies are built.
