file(REMOVE_RECURSE
  "CMakeFiles/melody_sim.dir/melody_sim.cc.o"
  "CMakeFiles/melody_sim.dir/melody_sim.cc.o.d"
  "melody_sim"
  "melody_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/melody_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
