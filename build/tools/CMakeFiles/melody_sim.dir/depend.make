# Empty dependencies file for melody_sim.
# This may be replaced when dependencies are built.
