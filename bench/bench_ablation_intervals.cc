// Ablation A2 — qualification intervals [Theta_m, Theta_M] x [C_m, C_M].
//
// Algorithm 1 line 1 filters workers by quality and cost intervals, which
// also control the theoretical approximation constant lambda of Lemma 3.
// This bench tightens/widens the intervals around the Table-3 sampling
// ranges and reports the requester's utility, the number of qualified
// workers, and lambda.
#include <cstdio>

#include "auction/melody_auction.h"
#include "bench_common.h"
#include "sim/scenario.h"
#include "util/table.h"

namespace {
using namespace melody;
}

int main() {
  bench::banner("Ablation A2 — qualification interval tightness");
  sim::SraScenario scenario;
  scenario.num_workers = 300;
  scenario.num_tasks = 500;
  scenario.budget = 800.0;
  util::Rng rng(7);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);

  bench::Reporter csv("ablation_intervals.csv",
                      {"theta_min", "theta_max", "cost_min", "cost_max",
                       "qualified", "utility", "lambda"});
  util::TablePrinter table({"[Theta_m, Theta_M]", "[C_m, C_M]", "qualified",
                            "utility", "lambda (Lemma 3)"});

  struct Case {
    double tm, tM, cm, cM;
  };
  // From the full sampling range (nothing filtered) to aggressive filters.
  const Case cases[] = {
      {2.0, 4.0, 1.0, 2.0},   // paper setting: filter == sampling range
      {2.0, 4.0, 1.0, 1.5},   // exclude expensive workers
      {2.5, 4.0, 1.0, 2.0},   // exclude low-quality workers
      {3.0, 4.0, 1.0, 1.5},   // both, tight
      {2.0, 3.0, 1.5, 2.0},   // keep only low-quality expensive (worst case)
      {1.0, 5.0, 0.5, 3.0},   // wider than the population (no-op filter)
  };
  for (const Case& c : cases) {
    auction::AuctionConfig config;
    config.budget = scenario.budget;
    config.theta_min = c.tm;
    config.theta_max = c.tM;
    config.cost_min = c.cm;
    config.cost_max = c.cM;
    int qualified = 0;
    for (const auto& w : workers) {
      if (config.qualifies(w)) ++qualified;
    }
    auction::MelodyAuction melody;
    const auto result = melody.run({workers, tasks, config});
    char interval_q[48], interval_c[48];
    std::snprintf(interval_q, sizeof interval_q, "[%.1f, %.1f]", c.tm, c.tM);
    std::snprintf(interval_c, sizeof interval_c, "[%.1f, %.1f]", c.cm, c.cM);
    table.add_row({interval_q, interval_c, std::to_string(qualified),
                   std::to_string(result.requester_utility()),
                   util::TablePrinter::format(config.lambda(), 1)});
    csv.numeric_row({c.tm, c.tM, c.cm, c.cM, static_cast<double>(qualified),
                     static_cast<double>(result.requester_utility()),
                     config.lambda()});
  }
  table.print();
  std::printf("(tighter intervals shrink lambda — a better worst-case "
              "guarantee — but disqualify supply and can cost utility)\n");
  return 0;
}
