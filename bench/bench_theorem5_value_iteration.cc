// Theorem 5 — long-term truthfulness via the Bellman recursion.
//
// The paper's proof compares V^T(mu) (expected total utility under
// always-truthful bidding) with V^U(mu) (under some untruthful policy) by
// value iteration on Eq. (20). This bench instantiates the recursion with
// assignment probabilities and per-run utilities measured from the actual
// auction — truthful vs an always-overbid-10% policy — and prints both
// value functions across the quality grid.
#include <cstdio>
#include <vector>

#include "auction/melody_auction.h"
#include "bench_common.h"
#include "core/bellman.h"
#include "sim/scenario.h"
#include "util/table.h"

namespace {

using namespace melody;

/// Empirically measure, for a probe worker of quality mu inserted into
/// random Table-3 instances, his assignment probability and mean utility
/// when assigned, under a bid of (true cost * factor).
struct Measured {
  double assignment_probability = 0.0;
  double utility_when_assigned = 0.0;
};

Measured measure(double mu, double bid_factor) {
  Measured out;
  int assigned_trials = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    sim::SraScenario scenario;
    scenario.num_workers = 49;
    scenario.num_tasks = 30;
    scenario.budget = 70.0;
    util::Rng rng(static_cast<std::uint64_t>(mu * 1000 + t));
    auto workers = scenario.sample_workers(rng);
    const double true_cost = rng.uniform(1.0, 2.0);
    workers.push_back({999, {true_cost * bid_factor, 3}, mu});
    const auto tasks = scenario.sample_tasks(rng);
    auction::MelodyAuction auction;
    const auto result = auction.run({workers, tasks, scenario.auction_config()});
    const int count = result.tasks_assigned_to(999);
    if (count > 0) {
      ++assigned_trials;
      out.utility_when_assigned +=
          result.payment_to(999) - true_cost * count;
    }
  }
  out.assignment_probability = static_cast<double>(assigned_trials) / trials;
  if (assigned_trials > 0) out.utility_when_assigned /= assigned_trials;
  return out;
}

}  // namespace

int main() {
  bench::banner("Theorem 5 — V^T vs V^U by value iteration (Eq. 20)");

  core::BellmanConfig config;
  config.grid.quality_min = 2.0;
  config.grid.quality_max = 4.0;
  config.grid.points = 9;
  config.iterations = 80;
  config.transition_a = 1.0;
  config.transition_stddev = 0.25;

  // Tabulate the measured stage models on the grid, then interpolate by
  // nearest grid point inside the Bellman callbacks.
  std::vector<Measured> truthful_table(config.grid.points);
  std::vector<Measured> overbid_table(config.grid.points);
  for (std::size_t s = 0; s < config.grid.points; ++s) {
    const double mu = config.grid.value(s);
    truthful_table[s] = measure(mu, 1.0);
    overbid_table[s] = measure(mu, 1.35);
  }
  auto lookup = [&](const std::vector<Measured>& table, double mu) {
    const double step = config.grid.step();
    auto index = static_cast<std::size_t>(
        (mu - config.grid.quality_min) / step + 0.5);
    index = std::min(index, table.size() - 1);
    return table[index];
  };

  core::StageModel truthful;
  truthful.assignment_probability = [&](double mu) {
    return lookup(truthful_table, mu).assignment_probability;
  };
  truthful.utility_when_assigned = [&](double mu) {
    return lookup(truthful_table, mu).utility_when_assigned;
  };
  core::StageModel overbid;
  overbid.assignment_probability = [&](double mu) {
    return lookup(overbid_table, mu).assignment_probability;
  };
  overbid.utility_when_assigned = [&](double mu) {
    return lookup(overbid_table, mu).utility_when_assigned;
  };

  const auto v_truthful = core::value_iteration(config, truthful);
  const auto v_overbid = core::value_iteration(config, overbid);

  bench::Reporter csv("theorem5_value_iteration.csv",
                      {"mu", "V_truthful", "V_overbid"});
  util::TablePrinter table({"initial quality mu", "V^T (truthful)",
                            "V^U (overbid 35%)"});
  int dominated = 0;
  for (std::size_t s = 0; s < config.grid.points; ++s) {
    const double mu = config.grid.value(s);
    table.add_row(util::TablePrinter::format(mu, 2),
                  {v_truthful[s], v_overbid[s]}, 3);
    if (v_truthful[s] >= v_overbid[s] - 1e-9) ++dominated;
    csv.numeric_row({mu, v_truthful[s], v_overbid[s]});
  }
  table.print();
  std::printf("\nV^T >= V^U at %d of %zu grid states (the paper claims all; "
              "states where the overbid wins reflect the portfolio channel "
              "measured in bench_ablation_truthfulness_gap)\n",
              dominated, config.grid.points);
  return 0;
}
