// Fig. 4 / Table 3 — Competitiveness of MELODY vs OPT-UB and RANDOM.
//
// Reproduces the three sweeps of Table 3:
//   (a) requester's utility vs number of workers (M=500, B in {600, 800})
//   (b) requester's utility vs budget           (M=500, N in {100, 250})
//   (c) requester's utility vs number of tasks  (B=2000, N in {100, 400})
// and the two scalar claims: MELODY outperforms RANDOM by ~259% on average
// and stays within an empirical approximation factor of ~1.337 of OPT-UB.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "auction/melody_auction.h"
#include "auction/opt_ub.h"
#include "auction/random_auction.h"
#include "bench_common.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace melody;

constexpr int kSeedsPerPoint = 3;

struct Point {
  double x = 0;
  double opt_ub = 0;
  double melody = 0;
  double random = 0;
};

Point evaluate(const sim::SraScenario& scenario, double x, std::uint64_t seed0) {
  Point point;
  point.x = x;
  for (int s = 0; s < kSeedsPerPoint; ++s) {
    util::Rng rng(seed0 + static_cast<std::uint64_t>(s) * 7919);
    const auto workers = scenario.sample_workers(rng);
    const auto tasks = scenario.sample_tasks(rng);
    const auto config = scenario.auction_config();
    auction::MelodyAuction melody;
    auction::RandomAuction random(seed0 * 31 + static_cast<std::uint64_t>(s));
    point.opt_ub += static_cast<double>(
        auction::opt_upper_bound(workers, tasks, config));
    point.melody += static_cast<double>(
        melody.run({workers, tasks, config}).requester_utility());
    point.random += static_cast<double>(
        random.run({workers, tasks, config}).requester_utility());
  }
  point.opt_ub /= kSeedsPerPoint;
  point.melody /= kSeedsPerPoint;
  point.random /= kSeedsPerPoint;
  return point;
}

struct Aggregate {
  double melody_over_random_sum = 0;
  int melody_over_random_count = 0;
  double worst_approx = 1.0;

  void feed(const Point& p) {
    if (p.random > 0) {
      melody_over_random_sum += p.melody / p.random;
      ++melody_over_random_count;
    }
    if (p.melody > 0) {
      worst_approx = std::max(worst_approx, p.opt_ub / p.melody);
    }
  }
};

void run_sweep(const char* title, const char* x_name,
               const std::vector<double>& xs, const char* variant_name,
               const std::vector<double>& variants,
               sim::SraScenario (*make)(double x, double variant),
               Aggregate& aggregate, bench::Reporter& csv) {
  bench::banner(title);
  for (double variant : variants) {
    util::TablePrinter table({x_name, "OPT-UB", "MELODY", "RANDOM"});
    for (double x : xs) {
      const auto scenario = make(x, variant);
      const Point p = evaluate(scenario, x,
                               static_cast<std::uint64_t>(x * 13 + variant));
      aggregate.feed(p);
      table.add_row(util::TablePrinter::format(x, 0),
                    {p.opt_ub, p.melody, p.random}, 1);
      csv.row({title, std::to_string(variant), std::to_string(x),
               std::to_string(p.opt_ub), std::to_string(p.melody),
               std::to_string(p.random)});
    }
    std::printf("%s = %g\n", variant_name, variant);
    table.print();
    std::printf("\n");
  }
}

std::vector<double> linspace(double lo, double hi, double step) {
  std::vector<double> xs;
  for (double x = lo; x <= hi + 1e-9; x += step) xs.push_back(x);
  return xs;
}

}  // namespace

int main() {
  bench::Reporter csv("fig4_competitiveness.csv",
                      {"sweep", "variant", "x", "opt_ub", "melody", "random"});
  Aggregate aggregate;

  run_sweep(
      "Fig. 4a — utility vs number of workers (setting I)", "N",
      linspace(50, 700, 50), "budget B", {600.0, 800.0},
      [](double x, double v) {
        return sim::table3_setting_i(static_cast<int>(x), v);
      },
      aggregate, csv);

  run_sweep(
      "Fig. 4b — utility vs budget (setting II)", "B",
      linspace(10, 2310, 100), "workers N", {100.0, 250.0},
      [](double x, double v) {
        return sim::table3_setting_ii(x, static_cast<int>(v));
      },
      aggregate, csv);

  run_sweep(
      "Fig. 4c — utility vs number of tasks (setting III)", "M",
      linspace(50, 700, 50), "workers N", {100.0, 400.0},
      [](double x, double v) {
        return sim::table3_setting_iii(static_cast<int>(x),
                                       static_cast<int>(v));
      },
      aggregate, csv);

  bench::banner("Fig. 4 — scalar claims");
  const double avg_ratio =
      aggregate.melody_over_random_sum / aggregate.melody_over_random_count;
  std::printf("MELODY / RANDOM average utility ratio: %.3f "
              "(paper: MELODY outperforms RANDOM by 259.2%% on average)\n",
              avg_ratio);
  std::printf("Worst empirical approximation factor OPT-UB / MELODY: %.3f "
              "(paper: at most 1.337)\n",
              aggregate.worst_approx);
  return 0;
}
