// Ablation A1 — sensitivity to the EM re-estimation period T.
//
// Algorithm 3 re-estimates each worker's hyper-parameters every T runs.
// The paper notes the accuracy/time trade-off ("smaller T will bring
// higher accuracy ... but meanwhile will increase the time overhead") and
// uses T = 10. This bench sweeps T and reports estimation error, true
// utility, and wall-clock time; it also ablates the refilter-after-EM
// refinement (see DESIGN.md).
#include <chrono>
#include <cstdio>

#include "auction/melody_auction.h"
#include "bench_common.h"
#include "estimators/melody_estimator.h"
#include "sim/metrics.h"
#include "sim/platform.h"
#include "util/table.h"

namespace {

using namespace melody;

sim::LongTermScenario reduced_scenario() {
  sim::LongTermScenario s;
  s.num_workers = 100;
  s.num_tasks = 120;
  s.runs = 400;
  s.budget = 300.0;
  return s;
}

struct Outcome {
  double error = 0;
  double utility = 0;
  double seconds = 0;
};

Outcome run(int period, bool refilter) {
  const auto scenario = reduced_scenario();
  estimators::MelodyEstimatorConfig config;
  config.initial_posterior = {scenario.initial_mu, scenario.initial_sigma};
  config.reestimation_period = period;
  config.refilter_after_em = refilter;
  estimators::MelodyEstimator estimator(config);
  auction::MelodyAuction mechanism;
  util::Rng rng(41);
  sim::Platform platform(
      scenario, mechanism, estimator,
      sim::sample_population(scenario.population_config(), rng), 42);
  const auto start = std::chrono::steady_clock::now();
  const auto records = platform.run_all();
  Outcome out;
  out.seconds = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start).count();
  const auto summary = sim::summarize_after(records, 50);
  out.error = summary.mean_estimation_error;
  out.utility = summary.mean_true_utility;
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation A1 — EM re-estimation period T");
  bench::Reporter csv(
      "ablation_T.csv",
      {"T", "refilter", "estimation_error", "true_utility", "seconds"});
  util::TablePrinter table(
      {"T", "refilter after EM", "est. error", "true utility", "seconds"});
  for (int period : {0, 5, 10, 25, 50, 100}) {
    for (bool refilter : {true, false}) {
      if (period == 0 && !refilter) continue;  // EM disabled: one row only
      const Outcome out = run(period, refilter);
      table.add_row({period == 0 ? "off" : std::to_string(period),
                     refilter ? "yes" : "no",
                     util::TablePrinter::format(out.error, 4),
                     util::TablePrinter::format(out.utility, 1),
                     util::TablePrinter::format(out.seconds, 2)});
      csv.row({std::to_string(period), refilter ? "1" : "0",
               std::to_string(out.error), std::to_string(out.utility),
               std::to_string(out.seconds)});
    }
  }
  table.print();
  std::printf("(paper uses T = 10; smaller T = more frequent EM = slower "
              "but usually more accurate)\n");
  return 0;
}
