// Fig. 6 — Short-term truthfulness check.
//
// Following Section 7.4: from the N=300, B=2000 instance pick one winner
// and one loser, then sweep their *actual* bids of cost and frequency
// around the true values and report the resulting single-run utility. The
// paper's claim (utility is maximized at the true bid) should be visible as
// a plateau at the truthful utility with no higher point.
#include <cstdio>
#include <vector>

#include "auction/melody_auction.h"
#include "bench_common.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace melody;

double utility_of(const auction::AllocationResult& result,
                  auction::WorkerId id, double true_cost) {
  return result.payment_to(id) - true_cost * result.tasks_assigned_to(id);
}

void sweep_cost(const std::vector<auction::WorkerProfile>& workers,
                const std::vector<auction::Task>& tasks,
                const auction::AuctionConfig& config, std::size_t target,
                const char* label, bench::Reporter& csv) {
  auction::MelodyAuction melody;
  const double true_cost = workers[target].bid.cost;
  util::TablePrinter table({"actual bid of cost", "utility"});
  double best_utility = -1e18;
  double best_bid = 0.0;
  for (double factor = 0.5; factor <= 1.75; factor += 0.0625) {
    auto bids = workers;
    bids[target].bid.cost = true_cost * factor;
    auction::MelodyAuction auction;
    const auto result = auction.run({bids, tasks, config});
    const double utility = utility_of(result, workers[target].id, true_cost);
    if (utility > best_utility) {
      best_utility = utility;
      best_bid = bids[target].bid.cost;
    }
    table.add_row(util::TablePrinter::format(bids[target].bid.cost, 3),
                  {utility}, 4);
    csv.row({label, "cost", std::to_string(bids[target].bid.cost),
             std::to_string(utility)});
  }
  std::printf("%s: true cost %.3f; utility-maximizing swept bid %.3f\n", label,
              true_cost, best_bid);
  table.print();
  std::printf("\n");
}

void sweep_frequency(const std::vector<auction::WorkerProfile>& workers,
                     const std::vector<auction::Task>& tasks,
                     const auction::AuctionConfig& config, std::size_t target,
                     const char* label, bench::Reporter& csv) {
  const double true_cost = workers[target].bid.cost;
  util::TablePrinter table({"actual bid of frequency", "utility"});
  for (int frequency = 1; frequency <= 5; ++frequency) {
    auto bids = workers;
    bids[target].bid.frequency = frequency;
    auction::MelodyAuction auction;
    const auto result = auction.run({bids, tasks, config});
    const double utility = utility_of(result, workers[target].id, true_cost);
    table.add_row(util::TablePrinter::format(frequency, 0), {utility}, 4);
    csv.row({label, "frequency", std::to_string(frequency),
             std::to_string(utility)});
  }
  std::printf("%s: true frequency %d\n", label,
              workers[target].bid.frequency);
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  sim::SraScenario scenario;
  scenario.num_workers = 300;
  scenario.num_tasks = 500;
  scenario.budget = 2000.0;
  util::Rng rng(64);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  const auto config = scenario.auction_config();

  auction::MelodyAuction melody;
  const auto truthful = melody.run({workers, tasks, config});

  // Pick one winner and one loser (first of each in id order).
  std::size_t winner = workers.size(), loser = workers.size();
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const bool assigned = truthful.tasks_assigned_to(workers[w].id) > 0;
    if (assigned && winner == workers.size()) winner = w;
    if (!assigned && loser == workers.size()) loser = w;
  }

  bench::Reporter csv("fig6_short_term_truthfulness.csv",
                      {"role", "dimension", "actual_bid", "utility"});

  bench::banner("Fig. 6a — cost-truthfulness of a winner");
  sweep_cost(workers, tasks, config, winner, "winner", csv);
  bench::banner("Fig. 6b — frequency-truthfulness of a winner");
  sweep_frequency(workers, tasks, config, winner, "winner", csv);
  bench::banner("Fig. 6c — cost-truthfulness of a loser");
  sweep_cost(workers, tasks, config, loser, "loser", csv);
  bench::banner("Fig. 6d — frequency-truthfulness of a loser");
  sweep_frequency(workers, tasks, config, loser, "loser", csv);

  std::printf(
      "NOTE (reproduction finding): at the paper's own scale (M = 500 tasks,\n"
      "slack budget) the utility curves above need NOT peak at the true bid —\n"
      "a worker's limited frequency is matched to the earliest tasks, so a\n"
      "mild cost overbid shifts his portfolio toward later, better-paying\n"
      "tasks. See DESIGN.md and bench_ablation_truthfulness_gap. The paper's\n"
      "claimed shape does hold in the competitive single-task regime, shown\n"
      "below as a control.\n");

  bench::banner("Fig. 6 control — single-task regime (exactly truthful)");
  sim::SraScenario single;
  single.num_workers = 20;
  single.num_tasks = 1;
  single.budget = 1000.0;
  util::Rng single_rng(65);
  const auto single_workers = single.sample_workers(single_rng);
  const auto single_tasks = single.sample_tasks(single_rng);
  const auto single_config = single.auction_config();
  auction::MelodyAuction single_auction;
  const auto single_result =
      single_auction.run({single_workers, single_tasks, single_config});
  std::size_t single_winner = single_workers.size();
  for (std::size_t w = 0; w < single_workers.size(); ++w) {
    if (single_result.tasks_assigned_to(single_workers[w].id) > 0) {
      single_winner = w;
      break;
    }
  }
  if (single_winner < single_workers.size()) {
    sweep_cost(single_workers, single_tasks, single_config, single_winner,
               "single-task winner", csv);
  }
  return 0;
}
