// Ablation A4 — posterior accuracy vs number of scores per run.
//
// Theorem 3's update consumes a run's score set through (N, sum S); more
// scores per run shrink the posterior variance and the tracking error.
// This bench synthesizes a drifting worker and measures the tracker's
// mean absolute estimation error and final posterior variance as the
// per-run score count grows.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "lds/kalman.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {
using namespace melody;
}

int main() {
  bench::banner("Ablation A4 — scores per run vs tracking accuracy");
  bench::Reporter csv("ablation_scores_per_run.csv",
                      {"scores_per_run", "mean_abs_error", "posterior_var"});
  const lds::LdsParams truth{1.0, 0.05, 9.0};  // sigma_S = 3 as in Table 4
  const lds::Gaussian init{5.5, 2.25};
  const int runs = 300;
  const int repetitions = 40;

  util::TablePrinter table(
      {"scores per run", "mean |q - mu|", "final posterior variance"});
  for (int scores_per_run : {1, 2, 4, 8, 16, 32}) {
    util::RunningStats error;
    util::RunningStats variance;
    for (int rep = 0; rep < repetitions; ++rep) {
      util::Rng rng(static_cast<std::uint64_t>(scores_per_run) * 1000 + rep);
      double q = rng.normal(init.mean, init.stddev());
      lds::Gaussian posterior = init;
      for (int r = 0; r < runs; ++r) {
        q = truth.a * q + rng.normal(0.0, std::sqrt(truth.gamma));
        lds::ScoreSet set;
        for (int s = 0; s < scores_per_run; ++s) {
          set.add(q + rng.normal(0.0, std::sqrt(truth.eta)));
        }
        posterior = lds::filter_step(posterior, set, truth);
        if (r >= 50) error.add(std::abs(q - posterior.mean));
      }
      variance.add(posterior.var);
    }
    table.add_row(std::to_string(scores_per_run),
                  {error.mean(), variance.mean()}, 4);
    csv.numeric_row({static_cast<double>(scores_per_run), error.mean(),
                     variance.mean()});
  }
  table.print();
  std::printf("(error should fall roughly as the steady-state Kalman gain "
              "improves with N; it cannot beat the sqrt(gamma) drift floor)\n");
  return 0;
}
