// Fig. 9 / Table 4 — Long-term quality awareness.
//
// Full-scale reproduction of Section 7.7: N = 300 workers with latent
// quality following the four Fig. 1 patterns, M = 500 tasks and B = 800 per
// run, scores ~ N(q, 3^2) clamped to [1, 10], 1000 runs. Four estimator
// stacks drive the same MELODY auction:
//   STATIC (freeze after 50 warm-up runs), ML-CR (current run), ML-AR (all
//   runs), MELODY (LDS tracker, EM every T = 10 runs).
// Reported per estimator: average estimation error of quality per run and
// requester's true utility per run (downsampled series + overall means),
// plus the paper's relative-improvement numbers.
//
// The four estimator stacks are independent replicas, so they run as a
// sim::ParallelSweep — pass --threads T to shard them (and the per-worker
// updates inside each) across a pool. The tables are identical for every
// thread count; see DESIGN.md, "Parallel execution model".
#include <cstdio>
#include <memory>
#include <vector>

#include "auction/melody_auction.h"
#include "bench_common.h"
#include "estimators/factory.h"
#include "sim/metrics.h"
#include "sim/parallel_sweep.h"
#include "sim/platform.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace melody;

constexpr std::uint64_t kPopulationSeed = 97;
constexpr std::uint64_t kPlatformSeed = 2017;

// The shared registry is case-insensitive, so the paper's uppercase labels
// ("STATIC", "ML-CR", ...) construct the same stacks melody_sim and
// melody_serve build.
std::unique_ptr<estimators::QualityEstimator> make_estimator(
    const std::string& name, const sim::LongTermScenario& scenario) {
  auto estimator = estimators::make(
      name, {.initial_mu = scenario.initial_mu,
             .initial_sigma = scenario.initial_sigma,
             .reestimation_period = scenario.reestimation_period,
             .static_warmup_runs = 50});
  if (estimator == nullptr) {
    throw std::invalid_argument("fig9: unknown estimator " + name);
  }
  return estimator;
}

}  // namespace

int main(int argc, char** argv) {
  const melody::util::Flags flags(argc, argv);
  melody::util::set_shared_thread_count(
      static_cast<int>(flags.get_int("threads", 1)));

  const sim::LongTermScenario scenario;  // Table 4 defaults
  const std::vector<std::string> names{"STATIC", "ML-CR", "ML-AR", "MELODY"};

  // The metrics sidecar exercises the obs layer at full Table-4 scale:
  // fig9_longterm_quality.metrics.json gets the auction/estimator/pool
  // summaries accumulated across all four replicas.
  bench::Reporter csv("fig9_longterm_quality.csv",
                      {"estimator", "run", "estimation_error", "true_utility"},
                      {.metrics_sidecar = true});

  // Identical population and platform seed across estimators: the only
  // difference between the four replicas is the quality-updating method.
  sim::ParallelSweep sweep;
  for (const auto& name : names) {
    sim::SweepJob job;
    job.label = name;
    job.scenario = scenario;
    job.population_seed = kPopulationSeed;
    job.platform_seed = kPlatformSeed;
    job.make_mechanism = [] {
      return std::make_unique<auction::MelodyAuction>();
    };
    job.make_estimator = [name, &scenario] {
      return make_estimator(name, scenario);
    };
    sweep.add(std::move(job));
  }
  std::printf("running %zu estimator replicas on %d thread(s) ...\n",
              sweep.job_count(), melody::util::shared_thread_count());
  std::fflush(stdout);
  const sim::SweepResult sweep_result = sweep.run();

  std::vector<std::vector<sim::RunRecord>> all_records;
  for (const auto& replica : sweep_result.replicas) {
    all_records.push_back(replica.records);
    for (const auto& r : replica.records) {
      csv.row({replica.label, std::to_string(r.run),
               std::to_string(r.estimation_error),
               std::to_string(r.true_utility)});
    }
  }

  bench::banner("Fig. 9a — average estimation error of quality per run");
  {
    util::TablePrinter table({"run", names[0], names[1], names[2], names[3]});
    for (int run = 50; run <= scenario.runs; run += 50) {
      std::vector<double> row;
      for (const auto& records : all_records) {
        // Smooth over a 50-run window ending at `run` for readability.
        double sum = 0;
        for (int r = run - 50; r < run; ++r) sum += records[r].estimation_error;
        row.push_back(sum / 50.0);
      }
      table.add_row(std::to_string(run), row, 3);
    }
    table.print();
  }

  bench::banner("Fig. 9b — requester's (true) utility per run");
  {
    util::TablePrinter table({"run", names[0], names[1], names[2], names[3]});
    for (int run = 50; run <= scenario.runs; run += 50) {
      std::vector<double> row;
      for (const auto& records : all_records) {
        double sum = 0;
        for (int r = run - 50; r < run; ++r) {
          sum += static_cast<double>(records[r].true_utility);
        }
        row.push_back(sum / 50.0);
      }
      table.add_row(std::to_string(run), row, 1);
    }
    table.print();
  }

  bench::banner("Fig. 9 — scalar claims (all-runs averages)");
  std::vector<sim::MetricSummary> summaries;
  for (const auto& records : all_records) {
    summaries.push_back(sim::summarize(records));
  }
  util::TablePrinter table(
      {"estimator", "avg estimation error", "avg true utility"});
  for (std::size_t e = 0; e < names.size(); ++e) {
    table.add_row(names[e], {summaries[e].mean_estimation_error,
                             summaries[e].mean_true_utility},
                  3);
  }
  table.print();

  const auto& melody = summaries.back();
  std::printf("\nMELODY average true utility: %.1f (paper: 94.6)\n",
              melody.mean_true_utility);
  const char* baselines[] = {"STATIC", "ML-CR", "ML-AR"};
  const double paper_utility_gain[] = {46.6, 19.7, 18.2};
  const double paper_error_drop[] = {24.2, 18.5, 17.6};
  for (int b = 0; b < 3; ++b) {
    const double utility_gain = 100.0 *
        (melody.mean_true_utility - summaries[b].mean_true_utility) /
        summaries[b].mean_true_utility;
    const double error_drop = 100.0 *
        (summaries[b].mean_estimation_error - melody.mean_estimation_error) /
        summaries[b].mean_estimation_error;
    std::printf("vs %-7s utility +%.1f%% (paper +%.1f%%), "
                "estimation error -%.1f%% (paper -%.1f%%)\n",
                baselines[b], utility_gain, paper_utility_gain[b], error_drop,
                paper_error_drop[b]);
  }
  return 0;
}
