// Ablation A3 — greedy MELODY vs the exact optimum on small instances.
//
// The exact branch-and-bound solver is only tractable for tiny instances,
// but on those it gives the true empirical approximation factor
// OPT / MELODY (Theorem 7 bounds it by lambda * beta; Fig. 4 estimates it
// against OPT-UB only).
#include <algorithm>
#include <cstdio>

#include "auction/exact_sra.h"
#include "auction/melody_auction.h"
#include "auction/opt_ub.h"
#include "bench_common.h"
#include "sim/scenario.h"
#include "util/stats.h"
#include "util/table.h"

namespace {
using namespace melody;
}

int main() {
  bench::banner("Ablation A3 — empirical approximation factor vs exact OPT");
  bench::Reporter csv("ablation_exactness.csv",
                      {"seed", "melody", "exact_opt", "opt_ub"});

  util::RunningStats exact_ratio;   // OPT / MELODY
  util::RunningStats ub_looseness;  // OPT-UB / OPT
  util::TablePrinter table({"seed", "MELODY", "exact OPT", "OPT-UB"});
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    sim::SraScenario scenario;
    scenario.num_workers = 10;
    scenario.num_tasks = 6;
    scenario.budget = 12.0;
    util::Rng rng(seed);
    const auto workers = scenario.sample_workers(rng);
    const auto tasks = scenario.sample_tasks(rng);
    const auto config = scenario.auction_config();
    auction::MelodyAuction melody;
    const auto mel = melody.run({workers, tasks, config}).requester_utility();
    const auto opt = auction::exact_sra_optimum(workers, tasks, config);
    const auto ub = auction::opt_upper_bound(workers, tasks, config);
    if (mel > 0) {
      exact_ratio.add(static_cast<double>(opt) / static_cast<double>(mel));
    }
    if (opt > 0) {
      ub_looseness.add(static_cast<double>(ub) / static_cast<double>(opt));
    }
    table.add_row({std::to_string(seed), std::to_string(mel),
                   std::to_string(opt), std::to_string(ub)});
    csv.numeric_row({static_cast<double>(seed), static_cast<double>(mel),
                     static_cast<double>(opt), static_cast<double>(ub)});
  }
  table.print();
  std::printf("\nOPT / MELODY: mean %.3f, worst %.3f "
              "(theoretical bound: lambda * beta with lambda = 48)\n",
              exact_ratio.mean(), exact_ratio.max());
  std::printf("OPT-UB / OPT looseness: mean %.3f, worst %.3f "
              "(how pessimistic Fig. 4's estimated bound is)\n",
              ub_looseness.mean(), ub_looseness.max());
  return 0;
}
