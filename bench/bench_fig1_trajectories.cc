// Fig. 1 — Four typical types of workers' long-term quality curves.
//
// The paper plots four AMT workers' quality over time and defines
// "stability" (footnote 4) as regression slope within +/-0.05 and variance
// below 100 on its 0-100 scale (x10 rescaled here), reporting 8.5% stable
// workers. This bench regenerates the four synthetic curves our simulator
// uses, prints downsampled series, and classifies a sampled population to
// confirm the stable fraction.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sim/analytics.h"
#include "sim/trajectory.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace melody;

void print_curve(const char* label, const std::vector<double>& q,
                 bench::Reporter& csv) {
  const util::LinearFit fit = util::linear_trend(q);
  std::printf("%-12s slope=%+.4f/run  variance=%6.3f  stable=%s\n", label,
              fit.slope, util::variance(q),
              sim::is_stable(q) ? "yes" : "no");
  std::printf("  q^r: ");
  for (std::size_t r = 0; r < q.size(); r += q.size() / 12) {
    std::printf("%5.2f ", q[r]);
  }
  std::printf("\n");
  for (std::size_t r = 0; r < q.size(); ++r) {
    csv.row({label, std::to_string(r + 1), std::to_string(q[r])});
  }
}

}  // namespace

int main() {
  bench::banner("Fig. 1 — four long-term quality patterns");
  bench::Reporter csv("fig1_trajectories.csv",
                      {"pattern", "run", "latent_quality"});

  util::Rng rng(20170601);
  const int runs = 120;
  for (const auto kind :
       {sim::TrajectoryKind::kRising, sim::TrajectoryKind::kDeclining,
        sim::TrajectoryKind::kFluctuating, sim::TrajectoryKind::kStable}) {
    auto config = sim::sample_config(kind, runs, rng);
    config.period = 60.0;  // make the fluctuation visible over 120 runs
    const auto q = sim::generate_trajectory(config, runs, rng);
    print_curve(sim::to_string(kind).c_str(), q, csv);
  }

  // Population-level classification (paper: 8.5% stable under footnote 4).
  const int population = 4000;
  int stable = 0;
  sim::PopulationMix mix;
  std::vector<std::vector<double>> histories;
  histories.reserve(population);
  for (int i = 0; i < population; ++i) {
    const auto kind = sim::sample_kind(mix, rng);
    const auto config = sim::sample_config(kind, 1000, rng);
    histories.push_back(sim::generate_trajectory(config, 1000, rng));
    if (sim::is_stable(histories.back())) ++stable;
  }
  const double fraction = 100.0 * stable / population;
  std::printf("\nStable workers in sampled population: %.1f%% (paper: 8.5%%)\n",
              fraction);
  std::printf("analytics: %s\n",
              sim::to_string(sim::analyze_population(histories)).c_str());
  return 0;
}
