// Ablation A6 — UCB exploration bonus under scarce budgets (extension).
//
// Under the paper's supply-saturated regime every worker is observed every
// run and exploration is unnecessary. Under scarcity, a worker whose
// estimate collapses is never re-assigned and his estimate goes stale
// (see DESIGN.md). The exploration_beta extension adds a UCB-style bonus
// beta * sqrt(log(runs)/observations) to the reported estimate; this bench
// sweeps beta on a deliberately budget-starved scenario and reports the
// requester's true utility and the tracking error.
#include <cstdio>

#include "auction/melody_auction.h"
#include "bench_common.h"
#include "estimators/melody_estimator.h"
#include "sim/metrics.h"
#include "sim/platform.h"
#include "util/table.h"

namespace {

using namespace melody;

sim::LongTermScenario starved_scenario() {
  sim::LongTermScenario s;
  s.num_workers = 150;
  s.num_tasks = 120;
  s.runs = 400;
  s.budget = 250.0;  // roughly half the supply can be hired per run
  return s;
}

}  // namespace

int main() {
  bench::banner("Ablation A6 — exploration bonus under budget scarcity");
  bench::Reporter csv(
      "ablation_exploration.csv",
      {"beta", "true_utility", "estimation_error", "total_payment"});
  const auto scenario = starved_scenario();
  util::TablePrinter table(
      {"beta", "true utility", "est. error", "payment"});
  for (double beta : {0.0, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    estimators::MelodyEstimatorConfig config;
    config.initial_posterior = {scenario.initial_mu, scenario.initial_sigma};
    config.reestimation_period = scenario.reestimation_period;
    config.exploration_beta = beta;
    estimators::MelodyEstimator estimator(config);
    auction::MelodyAuction mechanism;
    util::Rng rng(61);  // identical population across betas
    sim::Platform platform(
        scenario, mechanism, estimator,
        sim::sample_population(scenario.population_config(), rng), 62);
    const auto summary = sim::summarize_after(platform.run_all(), 50);
    table.add_row(util::TablePrinter::format(beta, 2),
                  {summary.mean_true_utility, summary.mean_estimation_error,
                   summary.mean_total_payment},
                  3);
    csv.numeric_row({beta, summary.mean_true_utility,
                     summary.mean_estimation_error,
                     summary.mean_total_payment});
  }
  table.print();
  std::printf("(beta = 0 is the paper's behaviour; the reported estimation "
              "error includes the bonus itself, so moderate beta trades a "
              "little measured error for re-discovering improved workers)\n");
  return 0;
}
