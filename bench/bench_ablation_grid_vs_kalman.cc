// Ablation A9 — closed-form Kalman tracker (Theorem 3) vs the grid-based
// general-form tracker (Theorem 2): tracking accuracy must agree to grid
// resolution for Gaussian emissions; the grid pays a large constant factor
// for its generality. Both run with fixed hyper-parameters (no EM) so the
// comparison isolates the inference engine.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "estimators/grid_estimator.h"
#include "estimators/melody_estimator.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace melody;

struct Outcome {
  double error = 0.0;
  double seconds = 0.0;
};

template <typename Estimator>
Outcome track(Estimator& estimator, int workers, int runs) {
  util::Rng rng(51);
  const lds::LdsParams truth{1.0, 0.05, 9.0};
  std::vector<double> q(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    estimator.register_worker(w);
    q[static_cast<std::size_t>(w)] = rng.uniform(2.0, 9.0);
  }
  util::RunningStats error;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < runs; ++r) {
    for (int w = 0; w < workers; ++w) {
      auto& quality = q[static_cast<std::size_t>(w)];
      quality = std::clamp(quality + rng.normal(0.0, std::sqrt(truth.gamma)),
                           1.0, 10.0);
      lds::ScoreSet set;
      for (int s = 0; s < 3; ++s) {
        set.add(quality + rng.normal(0.0, std::sqrt(truth.eta)));
      }
      estimator.observe(w, set);
      if (r > runs / 4) error.add(std::abs(quality - estimator.estimate(w)));
    }
  }
  Outcome out;
  out.seconds = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start).count();
  out.error = error.mean();
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation A9 — Kalman (Thm. 3) vs grid filter (Thm. 2)");
  const int workers = 10;
  const int runs = 150;

  estimators::MelodyEstimatorConfig kalman_config;
  kalman_config.initial_posterior = {5.5, 2.25};
  kalman_config.initial_params = {1.0, 0.05, 9.0};
  kalman_config.reestimation_period = 0;
  estimators::MelodyEstimator kalman(kalman_config);
  const Outcome kalman_outcome = track(kalman, workers, runs);

  estimators::GridEstimatorConfig grid_config;
  grid_config.quality_min = -6.0;
  grid_config.quality_max = 18.0;
  grid_config.grid_points = 300;
  grid_config.initial_posterior = {5.5, 2.25};
  grid_config.params = {1.0, 0.05, 9.0};
  estimators::GridEstimator grid(grid_config);
  const Outcome grid_outcome = track(grid, workers, runs);

  util::TablePrinter table({"tracker", "mean |q - mu|", "seconds"});
  table.add_row({"Kalman (closed form)",
                 util::TablePrinter::format(kalman_outcome.error, 4),
                 util::TablePrinter::format(kalman_outcome.seconds, 3)});
  table.add_row({"grid (300 cells)",
                 util::TablePrinter::format(grid_outcome.error, 4),
                 util::TablePrinter::format(grid_outcome.seconds, 3)});
  table.print();
  std::printf("(identical accuracy to grid resolution; the grid costs "
              "O(cells^2) per transition and buys arbitrary emission "
              "families — Poisson/Gamma/Beta are exercised in the tests)\n");
  return 0;
}
