// Ablation A5 — quantifying the multi-task truthfulness gap.
//
// As documented in DESIGN.md, neither the paper-literal (k+1) payment rule
// nor the Myerson-style critical-value rule is exactly DSIC in multi-task
// auctions: a worker's limited frequency is greedily spent on the earliest
// tasks, so a cost misreport can shift his portfolio toward better-paying
// later tasks. This bench measures, for both rules, the fraction of
// misreport probes that profit, the mean gain (negative = cheating loses in
// expectation, the paper's Fig. 7 claim), and the worst observed gain.
// Single-task auctions are also probed as a control (the critical rule must
// show zero violations there).
#include <algorithm>
#include <cstdio>

#include "auction/melody_auction.h"
#include "bench_common.h"
#include "sim/scenario.h"
#include "util/table.h"

namespace {

using namespace melody;

double utility_of(const auction::AllocationResult& result,
                  auction::WorkerId id, double true_cost) {
  return result.payment_to(id) - true_cost * result.tasks_assigned_to(id);
}

struct GapStats {
  int probes = 0;
  int violations = 0;
  double total_gain = 0;
  double max_gain = 0;
};

GapStats measure(auction::PaymentRule rule, int num_tasks) {
  GapStats stats;
  auction::MelodyAuction auction(rule);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    sim::SraScenario scenario;
    scenario.num_workers = 60;
    scenario.num_tasks = num_tasks;
    scenario.budget = num_tasks == 1 ? 1000.0 : 100.0;
    util::Rng rng(seed);
    const auto workers = scenario.sample_workers(rng);
    const auto tasks = scenario.sample_tasks(rng);
    const auto config = scenario.auction_config();
    const auto truthful = auction.run({workers, tasks, config});
    for (std::size_t w = 0; w < workers.size(); w += 6) {
      const double true_cost = workers[w].bid.cost;
      const double base = utility_of(truthful, workers[w].id, true_cost);
      for (double factor : {0.55, 0.7, 0.85, 0.95, 1.05, 1.2, 1.5, 1.9}) {
        auto bids = workers;
        bids[w].bid.cost = true_cost * factor;
        const double gain =
            utility_of(auction.run({bids, tasks, config}), workers[w].id,
                       true_cost) -
            base;
        ++stats.probes;
        stats.total_gain += gain;
        if (gain > 1e-9) {
          ++stats.violations;
          stats.max_gain = std::max(stats.max_gain, gain);
        }
      }
    }
  }
  return stats;
}

}  // namespace

int main() {
  bench::banner("Ablation A5 — truthfulness gap of the two payment rules");
  bench::Reporter csv("ablation_truthfulness_gap.csv",
                      {"rule", "tasks", "probes", "violation_pct", "mean_gain",
                       "max_gain"});
  util::TablePrinter table({"payment rule", "tasks/auction", "probes",
                            "profitable misreports", "mean gain", "max gain"});
  struct Case {
    auction::PaymentRule rule;
    const char* name;
    int tasks;
  };
  const Case cases[] = {
      {auction::PaymentRule::kCriticalValue, "critical-value", 1},
      {auction::PaymentRule::kPaperNextInQueue, "paper (k+1)", 1},
      {auction::PaymentRule::kCriticalValue, "critical-value", 40},
      {auction::PaymentRule::kPaperNextInQueue, "paper (k+1)", 40},
  };
  for (const Case& c : cases) {
    const GapStats stats = measure(c.rule, c.tasks);
    const double pct = 100.0 * stats.violations / stats.probes;
    table.add_row({c.name, std::to_string(c.tasks),
                   std::to_string(stats.probes),
                   util::TablePrinter::format(pct, 1) + "%",
                   util::TablePrinter::format(stats.total_gain / stats.probes, 4),
                   util::TablePrinter::format(stats.max_gain, 4)});
    csv.row({c.name, std::to_string(c.tasks), std::to_string(stats.probes),
             std::to_string(pct),
             std::to_string(stats.total_gain / stats.probes),
             std::to_string(stats.max_gain)});
  }
  table.print();
  std::printf("(single-task critical-value must be 0%%; multi-task gaps come "
              "from the frequency-portfolio channel — see DESIGN.md)\n");
  return 0;
}
