// Fig. 7 — Long-term truthfulness check.
//
// Following Section 7.5: one randomly chosen worker misreports with a given
// cheating probability over a 100-run horizon; the experiment is repeated
// many times and his average total-utility *gain* relative to the fully
// truthful case is reported, for three misreport styles (always higher /
// always lower / random) and for both cost and frequency cheating. The
// paper's claim: the gain is non-positive and declines with the cheating
// probability.
//
// Scaled down from the paper's 1000 repetitions x (N=300, M=500) to keep
// the bench run in seconds; the shape is unchanged.
#include <cstdio>
#include <vector>

#include "auction/melody_auction.h"
#include "bench_common.h"
#include "estimators/melody_estimator.h"
#include "sim/platform.h"
#include "util/table.h"

namespace {

using namespace melody;

constexpr int kRepetitions = 40;
constexpr int kRuns = 100;
constexpr auction::WorkerId kTarget = 0;

sim::LongTermScenario scenario_small() {
  sim::LongTermScenario s;
  s.num_workers = 60;
  s.num_tasks = 40;
  s.runs = kRuns;
  // Slack budget, mirroring the paper's Fig. 6/7 setting (B = 2000 on the
  // N = 300 instance): stage 2 rarely drops tasks, so frequency misreports
  // change nothing for a worker who already wins his full frequency.
  s.budget = 700.0;
  return s;
}

double total_utility(const sim::BidPolicy& policy, std::uint64_t seed) {
  const auto scenario = scenario_small();
  estimators::MelodyEstimatorConfig tracker;
  tracker.initial_posterior = {scenario.initial_mu, scenario.initial_sigma};
  // EM re-estimation is disabled inside this bench: the experiment probes
  // bidding strategy, and pure-Kalman tracking keeps the 4k platform
  // replays tractable without changing the auction's incentives.
  tracker.reestimation_period = 0;
  estimators::MelodyEstimator estimator(tracker);
  auction::MelodyAuction mechanism;
  util::Rng rng(seed);
  sim::Platform platform(scenario, mechanism, estimator,
                         sim::sample_population(scenario.population_config(),
                                                rng),
                         seed * 2654435761ULL + 1);
  platform.set_policy(kTarget, policy);
  platform.run_all();
  return platform.worker_total_utility(kTarget);
}

/// Truthful baselines are policy-independent: compute once per seed.
const std::vector<double>& truthful_baselines() {
  static const std::vector<double> baselines = [] {
    std::vector<double> out;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      out.push_back(total_utility(sim::BidPolicy::truthful(),
                                  static_cast<std::uint64_t>(rep + 1)));
    }
    return out;
  }();
  return baselines;
}

double mean_gain(const sim::BidPolicy& policy) {
  double gain = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto seed = static_cast<std::uint64_t>(rep + 1);
    gain += total_utility(policy, seed) - truthful_baselines()[rep];
  }
  return gain / kRepetitions;
}

void sweep(const char* title, bool cheat_cost, bench::Reporter& csv) {
  bench::banner(title);
  util::TablePrinter table({"cheating probability", "higher", "lower",
                            "random"});
  for (double probability : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    std::vector<double> gains;
    for (auto direction :
         {sim::MisreportDirection::kHigher, sim::MisreportDirection::kLower,
          sim::MisreportDirection::kRandom}) {
      sim::BidPolicy policy;
      policy.cheat_probability = probability;
      policy.direction = direction;
      policy.cheat_cost = cheat_cost;
      policy.cheat_frequency = !cheat_cost;
      gains.push_back(mean_gain(policy));
    }
    table.add_row(util::TablePrinter::format(probability, 1), gains, 4);
    csv.row({cheat_cost ? "cost" : "frequency", std::to_string(probability),
             std::to_string(gains[0]), std::to_string(gains[1]),
             std::to_string(gains[2])});
  }
  table.print();
  std::printf(
      "(average total-utility gain vs always-truthful; the paper claims all\n"
      " entries are <= 0 and decline. Reproduction finding: underbidding and\n"
      " random misreports do lose as claimed, but a persistent mild cost\n"
      " OVERBIDDER can gain — the frequency-portfolio channel documented in\n"
      " DESIGN.md shifts his assignments toward better-paying tasks. The\n"
      " paper's proof assumes per-run utilities cannot improve, which fails\n"
      " at multi-task scale.)\n");
}

}  // namespace

int main() {
  bench::Reporter csv(
      "fig7_long_term_truthfulness.csv",
      {"dimension", "cheat_probability", "higher", "lower", "random"});
  sweep("Fig. 7a — long-term cost-truthfulness", /*cheat_cost=*/true, csv);
  sweep("Fig. 7b — long-term frequency-truthfulness", /*cheat_cost=*/false,
        csv);
  return 0;
}
