// Table 1 — Property matrix for MELODY, machine-checked.
//
// The paper's Table 1 compares incentive mechanisms by seven properties
// and credits MELODY with all of them. This bench verifies each property
// empirically on randomized instances and prints the resulting matrix row.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "auction/melody_auction.h"
#include "auction/opt_ub.h"
#include "bench_common.h"
#include "estimators/melody_estimator.h"
#include "estimators/ml_ar_estimator.h"
#include "sim/metrics.h"
#include "sim/platform.h"
#include "util/table.h"

namespace {

using namespace melody;

double utility_of(const auction::AllocationResult& result,
                  auction::WorkerId id, double true_cost) {
  return result.payment_to(id) - true_cost * result.tasks_assigned_to(id);
}

/// Short-term truthfulness: single-task instances, exhaustive bid sweeps.
bool check_truthfulness() {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::SraScenario scenario;
    scenario.num_workers = 20;
    scenario.num_tasks = 1;
    scenario.budget = 1000.0;
    util::Rng rng(seed);
    const auto workers = scenario.sample_workers(rng);
    const auto tasks = scenario.sample_tasks(rng);
    const auto config = scenario.auction_config();
    auction::MelodyAuction auction;
    const auto truthful = auction.run({workers, tasks, config});
    for (std::size_t w = 0; w < workers.size(); ++w) {
      const double base = utility_of(truthful, workers[w].id,
                                     workers[w].bid.cost);
      for (double factor = 0.5; factor <= 2.0; factor += 0.125) {
        auto bids = workers;
        bids[w].bid.cost = workers[w].bid.cost * factor;
        if (utility_of(auction.run({bids, tasks, config}), workers[w].id,
                       workers[w].bid.cost) > base + 1e-9) {
          return false;
        }
      }
    }
  }
  return true;
}

bool check_ir_and_budget(double* worst_ratio) {
  *worst_ratio = 1.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::SraScenario scenario;
    scenario.num_workers = 120;
    scenario.num_tasks = 80;
    scenario.budget = 250.0;
    util::Rng rng(seed);
    const auto workers = scenario.sample_workers(rng);
    const auto tasks = scenario.sample_tasks(rng);
    const auto config = scenario.auction_config();
    auction::MelodyAuction auction;
    const auto result = auction.run({workers, tasks, config});
    if (!auction::check_budget_feasibility(result, config).empty()) return false;
    for (const auto& a : result.assignments) {
      if (a.payment < workers[static_cast<std::size_t>(a.worker)].bid.cost -
                          1e-9) {
        return false;
      }
    }
    const auto ub = auction::opt_upper_bound(workers, tasks, config);
    const auto mel = result.requester_utility();
    if (mel > 0) {
      *worst_ratio = std::max(*worst_ratio,
                              static_cast<double>(ub) /
                                  static_cast<double>(mel));
    }
  }
  return true;
}

bool check_efficiency(double* seconds_per_million) {
  sim::SraScenario scenario;
  scenario.num_workers = 500;
  scenario.num_tasks = 500;
  scenario.budget = 800.0;
  util::Rng rng(3);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  auction::MelodyAuction auction;
  const auto start = std::chrono::steady_clock::now();
  auction.run({workers, tasks, scenario.auction_config()});
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start).count();
  *seconds_per_million = elapsed * 1e6 / (500.0 * 500.0);
  return elapsed < 5.0;
}

bool check_long_term_awareness() {
  sim::LongTermScenario scenario;
  scenario.num_workers = 50;
  scenario.num_tasks = 40;
  scenario.runs = 150;
  scenario.budget = 400.0;  // supply-saturated, as in the paper's Table 4
  scenario.mix = {0.45, 0.45, 0.0, 0.1};
  auto run = [&](estimators::QualityEstimator& estimator) {
    auction::MelodyAuction mechanism;
    util::Rng rng(11);
    sim::Platform platform(
        scenario, mechanism, estimator,
        sim::sample_population(scenario.population_config(), rng), 12);
    return sim::summarize_after(platform.run_all(), 30).mean_estimation_error;
  };
  estimators::MelodyEstimatorConfig config;
  config.initial_posterior = {scenario.initial_mu, scenario.initial_sigma};
  estimators::MelodyEstimator melody_estimator(config);
  estimators::MlAllRunsEstimator baseline(scenario.initial_mu);
  return run(melody_estimator) < run(baseline);
}

}  // namespace

int main() {
  bench::banner("Table 1 — MELODY property matrix (machine-checked)");
  double worst_ratio = 0.0;
  double us_per_pair = 0.0;
  const bool truthful = check_truthfulness();
  const bool ir_budget = check_ir_and_budget(&worst_ratio);
  const bool efficient = check_efficiency(&us_per_pair);
  const bool long_term = check_long_term_awareness();

  util::TablePrinter table({"property", "MELODY", "evidence"});
  table.add_row({"Truthfulness", truthful ? "yes" : "NO",
                 "single-task bid sweeps, 6 instances x 20 workers"});
  table.add_row({"Individual rationality", ir_budget ? "yes" : "NO",
                 "payment >= cost on every assignment, 10 instances"});
  table.add_row({"Competitiveness", worst_ratio < 48.0 ? "yes" : "NO",
                 "worst OPT-UB/MELODY = " +
                     util::TablePrinter::format(worst_ratio, 3) +
                     " << lambda = 48"});
  table.add_row({"Computational efficiency", efficient ? "yes" : "NO",
                 util::TablePrinter::format(us_per_pair, 3) +
                     " us per worker-task pair"});
  table.add_row({"Budget feasibility", ir_budget ? "yes" : "NO",
                 "total payment <= B on every instance"});
  table.add_row({"(short-term) Quality awareness", "yes",
                 "allocation covers Q_j by construction"});
  table.add_row({"Long-term quality awareness", long_term ? "yes" : "NO",
                 "LDS tracker beats ML-AR on drifting population"});
  table.print();
  return 0;
}
