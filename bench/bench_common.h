// Shared helpers for the bench harness binaries: CSV output location and
// small formatting utilities. Each bench prints the rows/series the paper's
// corresponding table or figure reports, and mirrors them into CSV files
// next to the working directory (best-effort; printing is the source of
// truth).
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "util/csv.h"

namespace melody::bench {

/// Open a CSV mirror for a figure; returns nullptr (and keeps going) when
/// the working directory is not writable.
inline std::unique_ptr<util::CsvWriter> open_csv(const std::string& name) {
  try {
    return std::make_unique<util::CsvWriter>(name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "note: CSV mirror disabled (%s)\n", e.what());
    return nullptr;
  }
}

inline void banner(const char* title) {
  std::printf("\n######## %s ########\n\n", title);
}

}  // namespace melody::bench
