// Shared helpers for the bench harness binaries. Each bench prints the
// rows/series the paper's corresponding table or figure reports, and
// mirrors them into CSV files next to the working directory (best-effort;
// printing is the source of truth).
//
// Reporter is the one CSV front door: it owns the writer, locks the column
// count to the header, and rejects malformed rows loudly (std::logic_error)
// instead of silently emitting ragged CSV that plotting scripts misread.
// With Options::metrics_sidecar it also enables the obs layer for the
// bench's lifetime and writes the collected metric summaries to
// "<stem>.metrics.json" (JSON-lines, same format as
// `melody_sim --metrics-json`) when the Reporter is destroyed.
#pragma once

#include <cstdio>
#include <filesystem>
#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <system_error>
#include <vector>

#include "obs/metrics.h"
#include "obs/sink.h"
#include "util/csv.h"

namespace melody::bench {

/// Where a bench artifact lands: bare file names resolve into the ignored
/// "out/" directory (created on demand, best-effort) so generated CSVs and
/// metric sidecars never litter the repo root; a name that already carries
/// a directory is used as given.
inline std::string artifact_path(const std::string& name) {
  if (name.find('/') != std::string::npos) return name;
  std::error_code ec;
  std::filesystem::create_directories("out", ec);  // failure -> CsvWriter
                                                   // reports, mirror off
  return "out/" + name;
}

/// Where a *versioned* perf artifact lands: same resolution rule as
/// artifact_path — a name carrying a directory is used as given — but bare
/// names resolve against `root` (the repository root, default the working
/// directory) instead of the ignored out/ tree. Perf-trajectory JSON
/// (BENCH_<date>_<gitsha>.json) is committed per PR, so it must NOT land
/// in out/ with the disposable CSVs; everything else keeps using
/// artifact_path.
inline std::string perf_artifact_path(const std::string& name,
                                      const std::string& root = ".") {
  if (name.find('/') != std::string::npos) return name;
  if (root.empty() || root == ".") return name;
  return root.back() == '/' ? root + name : root + "/" + name;
}

/// CSV mirror for one figure/table. Construction opens the file and writes
/// the header; an unwritable working directory disables the mirror (a note
/// goes to stderr, the bench keeps printing) but row-shape validation still
/// runs so a bad bench fails the same way everywhere.
class Reporter {
 public:
  struct Options {
    /// Enable the obs layer and write "<stem>.metrics.json" next to the
    /// CSV when the Reporter goes out of scope.
    bool metrics_sidecar = false;
  };

  Reporter(const std::string& csv_name,
           std::initializer_list<std::string_view> header)
      : Reporter(csv_name, header, Options{}) {}

  Reporter(const std::string& csv_name,
           std::initializer_list<std::string_view> header, Options options)
      : columns_(header.size()) {
    if (columns_ == 0) {
      throw std::logic_error("bench::Reporter: empty header for " + csv_name);
    }
    const std::string resolved = artifact_path(csv_name);
    try {
      csv_ = std::make_unique<util::CsvWriter>(resolved);
      csv_->write_row(header);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "note: CSV mirror disabled (%s)\n", e.what());
      csv_ = nullptr;
    }
    if (options.metrics_sidecar) {
      const std::string stem = resolved.size() >= 4 &&
                                       resolved.ends_with(".csv")
                                   ? resolved.substr(0, resolved.size() - 4)
                                   : resolved;
      try {
        sink_ = std::make_unique<obs::JsonLinesSink>(stem + ".metrics.json");
        obs::set_sink(sink_.get());
        obs::set_enabled(true);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "note: metrics sidecar disabled (%s)\n",
                     e.what());
        sink_ = nullptr;
      }
    }
  }

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  ~Reporter() {
    if (sink_ != nullptr) {
      sink_->append_registry(obs::registry());
      obs::set_sink(nullptr);
      obs::set_enabled(false);
    }
  }

  /// True when the CSV mirror is actually being written.
  bool active() const noexcept { return csv_ != nullptr; }

  const std::string& path() const {
    static const std::string kNone;
    return csv_ != nullptr ? csv_->path() : kNone;
  }

  void row(std::initializer_list<std::string_view> cells) {
    check_shape(cells.size());
    if (csv_ != nullptr) csv_->write_row(cells);
  }

  void row(const std::vector<std::string>& cells) {
    check_shape(cells.size());
    if (csv_ != nullptr) csv_->write_row(cells);
  }

  void numeric_row(std::initializer_list<double> cells) {
    check_shape(cells.size());
    if (csv_ != nullptr) csv_->write_numeric_row(cells);
  }

  void numeric_row(const std::vector<double>& cells) {
    check_shape(cells.size());
    if (csv_ != nullptr) csv_->write_numeric_row(cells);
  }

 private:
  void check_shape(std::size_t got) const {
    if (got != columns_) {
      throw std::logic_error("bench::Reporter: row has " +
                             std::to_string(got) + " cells, header has " +
                             std::to_string(columns_));
    }
  }

  std::size_t columns_;
  std::unique_ptr<util::CsvWriter> csv_;
  std::unique_ptr<obs::JsonLinesSink> sink_;
};

inline void banner(const char* title) {
  std::printf("\n######## %s ########\n\n", title);
}

}  // namespace melody::bench
