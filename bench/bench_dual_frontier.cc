// Extension bench — the dual SRA form (paper footnote 6).
//
// Sweeps the target utility and reports the minimum budget the dual greedy
// needs, tracing the requester's budget-utility frontier; cross-checked by
// running the primal auction at each required budget.
#include <cstdio>

#include "auction/dual_sra.h"
#include "auction/melody_auction.h"
#include "bench_common.h"
#include "sim/scenario.h"
#include "util/table.h"

namespace {
using namespace melody;
}

int main() {
  bench::banner("Dual SRA — minimum budget vs target utility (footnote 6)");
  sim::SraScenario scenario;
  scenario.num_workers = 300;
  scenario.num_tasks = 500;
  util::Rng rng(66);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  const auto config = scenario.auction_config();

  bench::Reporter csv("dual_frontier.csv",
                      {"target_utility", "required_budget", "primal_utility"});
  util::TablePrinter table(
      {"target utility", "required budget", "primal at that budget"});
  for (std::size_t target = 25; target <= 250; target += 25) {
    const auto dual = auction::run_dual_sra(workers, tasks, config, target);
    if (!dual.target_met) {
      std::printf("target %zu unreachable (supply exhausted at %zu tasks)\n",
                  target, dual.allocation.requester_utility());
      break;
    }
    auto primal_config = config;
    primal_config.budget = dual.required_budget + 1e-9;
    auction::MelodyAuction primal;
    const auto primal_result = primal.run({workers, tasks, primal_config});
    table.add_row(std::to_string(target),
                  {dual.required_budget,
                   static_cast<double>(primal_result.requester_utility())},
                  2);
    csv.numeric_row({static_cast<double>(target), dual.required_budget,
                     static_cast<double>(primal_result.requester_utility())});
  }
  table.print();
  std::printf("(the frontier is convex-ish: cheap tasks first, then the\n"
              "marginal cost of utility rises as deeper, pricier critical\n"
              "workers are needed)\n");
  return 0;
}
