// Ablation A7 — oracle scores vs majority-voting agreement scores.
//
// The paper's Section 7.7 generates scores directly from the emission
// model (an "oracle" requester); footnote 5 notes that real platforms often
// score by unsupervised aggregation instead. This bench runs the same
// population twice — once with oracle Gaussian scores, once with
// weighted-majority agreement scores — and compares MELODY's quality
// tracking and the consensus accuracy it enables.
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "auction/melody_auction.h"
#include "bench_common.h"
#include "estimators/melody_estimator.h"
#include "sim/labeling.h"
#include "sim/scenario.h"
#include "sim/score_gen.h"
#include "sim/worker_model.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace melody;

constexpr int kRuns = 300;
constexpr int kWorkers = 80;
constexpr int kTasks = 40;
constexpr int kClasses = 4;

struct Outcome {
  double tracking_error = 0.0;   // mean |q - estimate| over workers, late runs
  double consensus_accuracy = 0.0;  // fraction of batches aggregated correctly
};

Outcome run(bool oracle_scores) {
  sim::LongTermScenario scenario;
  scenario.num_workers = kWorkers;
  scenario.num_tasks = kTasks;
  scenario.runs = kRuns;
  scenario.budget = 250.0;
  estimators::MelodyEstimatorConfig config;
  config.initial_posterior = {scenario.initial_mu, scenario.initial_sigma};
  config.reestimation_period = scenario.reestimation_period;
  estimators::MelodyEstimator estimator(config);
  auction::MelodyAuction mechanism;
  util::Rng rng(71);  // identical population + task stream for both modes
  const auto workers = sim::sample_population(scenario.population_config(), rng);
  for (const auto& w : workers) estimator.register_worker(w.id());

  const sim::LabelingModel labeling;
  util::RunningStats error;
  int batches = 0, correct = 0;
  for (int run = 1; run <= kRuns; ++run) {
    std::vector<auction::WorkerProfile> profiles;
    for (const auto& w : workers) {
      profiles.push_back({w.id(), w.true_bid(), estimator.estimate(w.id())});
    }
    const auto tasks = scenario.sample_tasks(rng);
    const auto result =
        mechanism.run({profiles, tasks, scenario.auction_config()});

    std::unordered_map<auction::WorkerId, lds::ScoreSet> collected;
    for (const auto& task : tasks) {
      const auto crowd = result.workers_of(task.id);
      if (crowd.empty()) continue;
      sim::LabelingTask batch{task.id, kClasses,
                              static_cast<int>(rng.uniform_int(0, kClasses - 1))};
      std::vector<double> skills, weights;
      for (auction::WorkerId w : crowd) {
        skills.push_back(workers[static_cast<std::size_t>(w)].latent_quality(run));
        weights.push_back(estimator.estimate(w));
      }
      const auto outcome =
          sim::run_labeling_task(labeling, batch, crowd, skills, weights, rng);
      ++batches;
      correct += outcome.aggregate_correct ? 1 : 0;
      for (std::size_t l = 0; l < outcome.labels.size(); ++l) {
        const auction::WorkerId w = outcome.labels[l].worker;
        if (oracle_scores) {
          collected[w].add(sim::generate_score(
              scenario.score_model,
              workers[static_cast<std::size_t>(w)].latent_quality(run), rng));
        } else {
          collected[w].add(outcome.scores[l]);
        }
      }
    }
    for (const auto& w : workers) {
      const auto it = collected.find(w.id());
      estimator.observe(w.id(),
                        it == collected.end() ? lds::ScoreSet{} : it->second);
      if (run > kRuns / 2) {
        error.add(std::abs(w.latent_quality(run) - estimator.estimate(w.id())));
      }
    }
  }
  return {error.mean(), static_cast<double>(correct) / batches};
}

}  // namespace

int main() {
  bench::banner("Ablation A7 — oracle vs majority-voting scores");
  const Outcome oracle = run(/*oracle_scores=*/true);
  const Outcome voting = run(/*oracle_scores=*/false);
  util::TablePrinter table(
      {"scoring", "tracking error", "consensus accuracy"});
  table.add_row({"oracle (Eq. 13)",
                 util::TablePrinter::format(oracle.tracking_error, 3),
                 util::TablePrinter::format(100.0 * oracle.consensus_accuracy,
                                            1) + "%"});
  table.add_row({"majority voting",
                 util::TablePrinter::format(voting.tracking_error, 3),
                 util::TablePrinter::format(100.0 * voting.consensus_accuracy,
                                            1) + "%"});
  table.print();
  bench::Reporter csv("ablation_scoring.csv",
                      {"scoring", "tracking_error", "consensus_accuracy"});
  csv.row({"oracle", std::to_string(oracle.tracking_error),
           std::to_string(oracle.consensus_accuracy)});
  csv.row({"voting", std::to_string(voting.tracking_error),
           std::to_string(voting.consensus_accuracy)});
  std::printf("(agreement scores are binary (agree/disagree), so the tracker "
              "sees a coarser, biased signal than the oracle — the paper's "
              "claim that its metrics \"can be incorporated naturally\" "
              "carries this cost)\n");
  return 0;
}
