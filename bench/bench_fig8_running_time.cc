// Fig. 8 — Running time of the MELODY auction (Theorem 8: O(NM)).
//
//   (a) running time vs number of workers, M in {500, 5000}, B = 800;
//   (b) running time vs number of tasks,  N in {500, 2000}, B = 800.
// The paper's claim is linear growth in both N and M.
//
// Extension beyond the paper:
//   (c) serial vs parallel wall clock for the long-term pipeline at large
//       N — a ParallelSweep of 8 replicas sharded across the pool; and
//   (d) a single large-N platform, where the per-(worker, run) score
//       streams and the estimator's sharded observe_run carry the
//       parallelism inside one replica.
// Both report a "speedup" counter relative to the threads=1 entry of the
// same family (the families run their serial entry first). Output is
// bit-identical across thread counts, so the speedup is free of any
// accuracy trade-off.
#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <memory>
#include <vector>

#include "auction/melody_auction.h"
#include "estimators/melody_estimator.h"
#include "obs/metrics.h"
#include "sim/parallel_sweep.h"
#include "sim/platform.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace melody;

double timer_sum_seconds(const obs::MetricsSnapshot& snapshot,
                         std::string_view name) {
  for (const auto& s : snapshot.summaries) {
    if (s.name == name) return s.stats.sum;
  }
  return 0.0;
}

void run_auction(benchmark::State& state, int workers, int tasks) {
  sim::SraScenario scenario;
  scenario.num_workers = workers;
  scenario.num_tasks = tasks;
  scenario.budget = 800.0;
  util::Rng rng(static_cast<std::uint64_t>(workers) * 1000003 + tasks);
  const auto worker_profiles = scenario.sample_workers(rng);
  const auto task_list = scenario.sample_tasks(rng);
  const auto config = scenario.auction_config();
  auction::MelodyAuction melody;
  for (auto _ : state) {
    benchmark::DoNotOptimize(melody.run({worker_profiles, task_list, config}));
  }
  state.SetComplexityN(static_cast<std::int64_t>(workers) * tasks);

  // Per-phase breakdown (Theorem 8's stages measured separately): a few
  // obs-enabled replays OUTSIDE the timed loop, so the headline ms/op stays
  // an uninstrumented measurement. Reported as per-auction milliseconds.
  constexpr int kInstrumentedReps = 3;
  const obs::MetricsSnapshot before = obs::registry().snapshot();
  {
    obs::ScopedEnable enable(true);
    for (int i = 0; i < kInstrumentedReps; ++i) {
      benchmark::DoNotOptimize(melody.run({worker_profiles, task_list, config}));
    }
  }
  const obs::MetricsSnapshot after = obs::registry().snapshot();
  const auto phase_ms = [&](std::string_view name) {
    return (timer_sum_seconds(after, name) - timer_sum_seconds(before, name)) *
           1e3 / kInstrumentedReps;
  };
  state.counters["rank_ms"] = phase_ms("auction/rank_sort");
  state.counters["prealloc_ms"] = phase_ms("auction/pre_allocate");
  state.counters["commit_ms"] = phase_ms("auction/commit");
}

// Fig. 8a: N sweep with M fixed.
void BM_Fig8a_WorkersSweep_M500(benchmark::State& state) {
  run_auction(state, static_cast<int>(state.range(0)), 500);
}
void BM_Fig8a_WorkersSweep_M5000(benchmark::State& state) {
  run_auction(state, static_cast<int>(state.range(0)), 5000);
}

// Fig. 8b: M sweep with N fixed.
void BM_Fig8b_TasksSweep_N500(benchmark::State& state) {
  run_auction(state, 500, static_cast<int>(state.range(0)));
}
void BM_Fig8b_TasksSweep_N2000(benchmark::State& state) {
  run_auction(state, 2000, static_cast<int>(state.range(0)));
}

/// Restores the serial default when a parallel benchmark exits.
struct ScopedThreads {
  explicit ScopedThreads(int threads) { util::set_shared_thread_count(threads); }
  ~ScopedThreads() { util::set_shared_thread_count(1); }
};

/// Times `body` once per benchmark iteration and reports the wall-clock
/// speedup against the threads=1 entry of the same `family` (which google
/// benchmark runs first — entries execute in registration order).
template <typename Body>
void report_speedup(benchmark::State& state, const std::string& family,
                    int threads, Body&& body) {
  double elapsed_seconds = 0.0;
  std::int64_t iterations = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    body();
    elapsed_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    ++iterations;
  }
  const double per_iteration =
      iterations > 0 ? elapsed_seconds / static_cast<double>(iterations) : 0.0;
  static std::map<std::string, double> serial_baseline;
  if (threads == 1) serial_baseline[family] = per_iteration;
  const auto baseline = serial_baseline.find(family);
  if (baseline != serial_baseline.end() && per_iteration > 0.0) {
    state.counters["speedup"] = baseline->second / per_iteration;
  }
  state.counters["threads"] = threads;
}

sim::LongTermScenario large_scenario(int workers) {
  sim::LongTermScenario scenario;
  scenario.num_workers = workers;
  scenario.num_tasks = 500;
  scenario.runs = 2;
  scenario.budget = 800.0;
  return scenario;
}

sim::EstimatorFactory melody_estimator_factory(
    const sim::LongTermScenario& scenario) {
  estimators::MelodyEstimatorConfig config;
  config.initial_posterior = {scenario.initial_mu, scenario.initial_sigma};
  config.reestimation_period = scenario.reestimation_period;
  return [config] {
    return std::make_unique<estimators::MelodyEstimator>(config);
  };
}

// Fig. 8c: replica-level parallelism. 8 long-term replicas at N workers.
void BM_Fig8c_ParallelSweep(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  ScopedThreads scoped(threads);
  const auto scenario = large_scenario(workers);
  const std::vector<std::uint64_t> seeds{11, 12, 13, 14, 15, 16, 17, 18};
  sim::ParallelSweep sweep;
  sweep.add_seed_grid(
      "melody", scenario, seeds,
      [] { return std::make_unique<auction::MelodyAuction>(); },
      melody_estimator_factory(scenario));
  report_speedup(state, "sweep/N" + std::to_string(workers), threads, [&] {
    auto result = sweep.run();
    benchmark::DoNotOptimize(result.merged.true_utility.sum());
  });
}

// Fig. 8d: intra-replica parallelism — one platform, large N, where score
// generation and the estimator's observe_run shard across the pool.
void BM_Fig8d_PlatformRuns(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  ScopedThreads scoped(threads);
  auto scenario = large_scenario(workers);
  scenario.runs = 3;
  const auto factory = melody_estimator_factory(scenario);
  report_speedup(state, "platform/N" + std::to_string(workers), threads, [&] {
    auction::MelodyAuction mechanism;
    auto estimator = factory();
    util::Rng population_rng(7);
    sim::Platform platform(
        scenario, mechanism, *estimator,
        sim::sample_population(scenario.population_config(), population_rng),
        8);
    benchmark::DoNotOptimize(platform.run_all());
  });
}

}  // namespace

BENCHMARK(BM_Fig8a_WorkersSweep_M500)
    ->DenseRange(100, 700, 150)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_Fig8a_WorkersSweep_M5000)
    ->DenseRange(100, 700, 150)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_Fig8b_TasksSweep_N500)
    ->DenseRange(500, 4500, 1000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_Fig8b_TasksSweep_N2000)
    ->DenseRange(500, 4500, 1000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

// Fig. 8c/8d: threads x workers. The threads=1 entry of each family must
// come first — it is the speedup baseline.
BENCHMARK(BM_Fig8c_ParallelSweep)
    ->ArgsProduct({{1, 2, 4, 8}, {2000, 4000}})
    ->ArgNames({"threads", "workers"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_Fig8d_PlatformRuns)
    ->ArgsProduct({{1, 2, 4, 8}, {4000}})
    ->ArgNames({"threads", "workers"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
