// Fig. 8 — Running time of the MELODY auction (Theorem 8: O(NM)).
//
//   (a) running time vs number of workers, M in {500, 5000}, B = 800;
//   (b) running time vs number of tasks,  N in {500, 2000}, B = 800.
// The paper's claim is linear growth in both N and M.
#include <benchmark/benchmark.h>

#include "auction/melody_auction.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace {

using namespace melody;

void run_auction(benchmark::State& state, int workers, int tasks) {
  sim::SraScenario scenario;
  scenario.num_workers = workers;
  scenario.num_tasks = tasks;
  scenario.budget = 800.0;
  util::Rng rng(static_cast<std::uint64_t>(workers) * 1000003 + tasks);
  const auto worker_profiles = scenario.sample_workers(rng);
  const auto task_list = scenario.sample_tasks(rng);
  const auto config = scenario.auction_config();
  auction::MelodyAuction melody;
  for (auto _ : state) {
    benchmark::DoNotOptimize(melody.run(worker_profiles, task_list, config));
  }
  state.SetComplexityN(static_cast<std::int64_t>(workers) * tasks);
}

// Fig. 8a: N sweep with M fixed.
void BM_Fig8a_WorkersSweep_M500(benchmark::State& state) {
  run_auction(state, static_cast<int>(state.range(0)), 500);
}
void BM_Fig8a_WorkersSweep_M5000(benchmark::State& state) {
  run_auction(state, static_cast<int>(state.range(0)), 5000);
}

// Fig. 8b: M sweep with N fixed.
void BM_Fig8b_TasksSweep_N500(benchmark::State& state) {
  run_auction(state, 500, static_cast<int>(state.range(0)));
}
void BM_Fig8b_TasksSweep_N2000(benchmark::State& state) {
  run_auction(state, 2000, static_cast<int>(state.range(0)));
}

}  // namespace

BENCHMARK(BM_Fig8a_WorkersSweep_M500)
    ->DenseRange(100, 700, 150)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_Fig8a_WorkersSweep_M5000)
    ->DenseRange(100, 700, 150)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_Fig8b_TasksSweep_N500)
    ->DenseRange(500, 4500, 1000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_Fig8b_TasksSweep_N2000)
    ->DenseRange(500, 4500, 1000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);
