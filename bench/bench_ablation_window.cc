// Ablation A8 — bounded history window (max_history, extension).
//
// The paper's Algorithm 2 refits EM over a worker's entire history, whose
// cost grows linearly with platform age. The max_history option slides a
// window with an exact Bayesian anchor (see DESIGN.md); this bench sweeps
// the window size on a long scenario and reports tracking quality and
// wall-clock time.
#include <chrono>
#include <cstdio>

#include "auction/melody_auction.h"
#include "bench_common.h"
#include "estimators/melody_estimator.h"
#include "sim/metrics.h"
#include "sim/platform.h"
#include "util/table.h"

namespace {

using namespace melody;

sim::LongTermScenario long_scenario() {
  sim::LongTermScenario s;
  s.num_workers = 100;
  s.num_tasks = 120;
  s.runs = 600;
  s.budget = 500.0;
  return s;
}

}  // namespace

int main() {
  bench::banner("Ablation A8 — EM history window");
  bench::Reporter csv(
      "ablation_window.csv",
      {"max_history", "estimation_error", "true_utility", "seconds"});
  const auto scenario = long_scenario();
  util::TablePrinter table(
      {"window", "est. error", "true utility", "seconds"});
  for (int window : {0, 400, 200, 100, 50, 25}) {
    estimators::MelodyEstimatorConfig config;
    config.initial_posterior = {scenario.initial_mu, scenario.initial_sigma};
    config.reestimation_period = scenario.reestimation_period;
    config.max_history = window;
    estimators::MelodyEstimator estimator(config);
    auction::MelodyAuction mechanism;
    util::Rng rng(83);
    sim::Platform platform(
        scenario, mechanism, estimator,
        sim::sample_population(scenario.population_config(), rng), 84);
    const auto start = std::chrono::steady_clock::now();
    const auto records = platform.run_all();
    const double seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    const auto summary = sim::summarize_after(records, 100);
    table.add_row(window == 0 ? "unbounded" : std::to_string(window),
                  {summary.mean_estimation_error, summary.mean_true_utility,
                   seconds},
                  3);
    csv.numeric_row({static_cast<double>(window),
                     summary.mean_estimation_error,
                     summary.mean_true_utility, seconds});
  }
  table.print();
  std::printf("(a modest window keeps nearly all of the accuracy at a "
              "fraction of the EM cost — and adapts faster when the worker's "
              "dynamics themselves change)\n");
  return 0;
}
