// Fig. 5 — Individual rationality and budget feasibility checks.
//
//   (a) per-winner total payment vs total cost (every point must lie above
//       the diagonal): setting II with N = 300, B = 2000;
//   (b) histogram + CDF of worker utilities (paper: long tail, mean 0.059,
//       max 0.479);
//   (c) actual total payment vs budget swept 0..1500 step 100 (never above
//       the diagonal, saturating once workers run out).
#include <cstdio>
#include <vector>

#include "auction/melody_auction.h"
#include "bench_common.h"
#include "sim/scenario.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {
using namespace melody;
}

int main() {
  // ---------------------------------------------------------- Fig. 5a + 5b
  bench::banner("Fig. 5a — individual rationality (N=300, B=2000)");
  sim::SraScenario scenario;
  scenario.num_workers = 300;
  scenario.num_tasks = 500;
  scenario.budget = 2000.0;
  util::Rng rng(55);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  const auto config = scenario.auction_config();
  auction::MelodyAuction melody;
  const auto result = melody.run({workers, tasks, config});

  bench::Reporter csv_a("fig5a_individual_rationality.csv",
                        {"worker", "total_cost", "total_payment"});

  double min_margin = 1e18;
  int winners = 0;
  std::vector<double> utilities;
  for (const auto& w : workers) {
    const double payment = result.payment_to(w.id);
    const int assigned = result.tasks_assigned_to(w.id);
    utilities.push_back(payment - w.bid.cost * assigned);
    if (assigned == 0) continue;
    ++winners;
    const double cost = w.bid.cost * assigned;
    min_margin = std::min(min_margin, payment - cost);
    csv_a.numeric_row({static_cast<double>(w.id), cost, payment});
  }
  std::printf("winners: %d of %d workers\n", winners,
              static_cast<int>(workers.size()));
  std::printf("minimum (payment - cost) margin over winners: %.6f "
              "(must be >= 0)\n\n",
              min_margin);

  bench::banner("Fig. 5b — distribution of workers' utilities");
  util::RunningStats stats;
  for (double u : utilities) stats.add(u);
  std::printf("mean utility: %.4f  max utility: %.4f "
              "(paper: mean 0.059, max 0.479)\n\n",
              stats.mean(), stats.max());
  util::Histogram histogram(0.0, std::max(stats.max(), 1e-9), 12);
  for (double u : utilities) histogram.add(u);
  std::fputs(histogram.render(40).c_str(), stdout);
  std::printf("\nCDF at bin upper edges: ");
  for (double c : histogram.cdf()) std::printf("%.3f ", c);
  std::printf("\n");
  bench::Reporter csv_b("fig5b_utility_distribution.csv",
                        {"bin_lo", "bin_hi", "count", "cdf"});
  const auto cdf = histogram.cdf();
  for (std::size_t b = 0; b < histogram.bin_count(); ++b) {
    csv_b.numeric_row({histogram.bin_lo(b), histogram.bin_hi(b),
                       static_cast<double>(histogram.count(b)), cdf[b]});
  }

  // --------------------------------------------------------------- Fig. 5c
  bench::banner("Fig. 5c — budget feasibility (B = 0..1500 step 100)");
  bench::Reporter csv_c("fig5c_budget_feasibility.csv",
                        {"budget", "total_payment"});
  util::TablePrinter table({"budget", "total payment"});
  bool feasible = true;
  for (double budget = 0.0; budget <= 1500.0; budget += 100.0) {
    auto swept = scenario;
    swept.budget = budget;
    util::Rng sweep_rng(56);
    const auto sweep_workers = swept.sample_workers(sweep_rng);
    const auto sweep_tasks = swept.sample_tasks(sweep_rng);
    const double paid =
        melody.run({sweep_workers, sweep_tasks, swept.auction_config()})
            .total_payment();
    feasible = feasible && paid <= budget + 1e-9;
    table.add_row(util::TablePrinter::format(budget, 0), {paid}, 2);
    csv_c.numeric_row({budget, paid});
  }
  table.print();
  std::printf("total payment never exceeded budget: %s\n",
              feasible ? "yes" : "NO — VIOLATION");
  return 0;
}
